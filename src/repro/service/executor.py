"""Parallel job execution with timeout, retry, and serial fallback.

The profile→design→simulate pipeline is CPU-bound pure Python, so
process-level parallelism is the only kind that helps; :class:`JobRunner`
drives a :class:`concurrent.futures.ProcessPoolExecutor` when more than
one worker is requested and the platform can actually fork one, and
degrades gracefully to in-process serial execution otherwise (no pool
support, single worker, or an injected runner that cannot be pickled).

Failure policy: each job gets ``1 + retries`` attempts with exponential
backoff between rounds; a job that exhausts its budget raises
:class:`~repro.errors.JobExecutionError` (or the
:class:`~repro.errors.JobTimeoutError` subclass when the last attempt
exceeded the per-job timeout). Timeouts are enforced only in pool mode —
a serial in-process attempt cannot be preempted.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import JobExecutionError, JobTimeoutError, ServiceError
from ..flow import ExperimentResult, result_summary, run_experiment
from ..obs.profile.report import profile_to_dict
from ..obs.runtime.events import NULL_LOG, EventLog
from ..obs.trace import Tracer
from .jobs import DesignJob
from .metrics import MetricsRegistry


def execute_job(
    job: DesignJob,
    tracer: Optional[Tracer] = None,
    profile: bool = False,
    lint: bool = False,
    sim_backend: Optional[str] = None,
) -> Tuple[ExperimentResult, Dict[str, Any]]:
    """Run one job in-process; returns the full result and its summary.

    ``sim_backend`` selects the simulation engine (see
    :mod:`repro.sim.backend`). It travels *next to* the job, never on
    it: a :class:`DesignJob` is frozen and fingerprinted, and because
    both backends are proven byte-identical, a cached result is valid
    regardless of which backend produced it — so the backend must not
    perturb cache keys. The job's ``graph_source`` by contrast *is*
    fingerprinted: static and traced graphs legitimately differ on
    data-dependent edges, so their results are cached separately.
    """
    result = run_experiment(
        job.app,
        scale=job.scale,
        seed=job.seed,
        params=job.params,
        simulate=job.simulate,
        design_overrides=job.design_overrides or None,
        trace=tracer,
        profile=profile,
        lint=lint,
        sim_backend=sim_backend,
        graph_source=job.graph_source,
    )
    return result, result_summary(result)


def run_job_summary(
    job: DesignJob, sim_backend: Optional[str] = None
) -> Dict[str, Any]:
    """Pool-friendly entry point: summary only (JSON/pickle-safe)."""
    return execute_job(job, sim_backend=sim_backend)[1]


def run_job_instrumented(
    job: DesignJob, profile: bool = False, lint: bool = False,
    trace_id: str = "", sim_backend: Optional[str] = None,
    sample_interval_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Pool entry point shipping observability home with the summary.

    The worker process builds its own tracer and registry (neither can
    cross the process boundary live), then returns their picklable raw
    forms: span dicts for :meth:`repro.obs.trace.Tracer.merge` and a
    registry :meth:`~repro.service.metrics.MetricsRegistry.dump` for
    :meth:`~repro.service.metrics.MetricsRegistry.merge`. With
    ``profile`` the worker also ships each system's simulation profile
    as its JSON-safe dict form, and with ``lint`` the serialized static
    analysis report.

    ``trace_id`` is the request's W3C trace id (empty for untraced
    callers): the worker's whole execution runs inside a root ``job``
    span carrying it, so after the merge the server-side span tree and
    the worker-side one join into a single per-request trace.

    ``sample_interval_s`` attaches a wall-clock stack sampler
    (:class:`repro.obs.flight.StackSampler` — thread-based, so it works
    here where signal-based profilers cannot) to this job's thread for
    the duration of the run; the collapsed-stack text ships home in the
    payload's ``samples`` field, ready for flamegraph tooling.
    """
    tracer = Tracer()
    registry = MetricsRegistry()
    sampler = None
    if sample_interval_s is not None:
        from ..obs.flight.sampler import StackSampler

        sampler = StackSampler(
            interval_s=sample_interval_s,
            threads=[threading.get_ident()],
        )
        sampler.start()
    start = time.perf_counter()
    try:
        with tracer.span("job", category="worker", app=job.app,
                         trace_id=trace_id):
            result, summary = execute_job(
                job, tracer=tracer, profile=profile, lint=lint,
                sim_backend=sim_backend,
            )
    finally:
        if sampler is not None:
            sampler.stop()
    registry.observe("worker_job_seconds", time.perf_counter() - start,
                     labels={"app": job.app})
    registry.incr("worker_jobs", labels={"app": job.app})
    return {
        "summary": summary,
        "spans": tracer.as_dicts(),
        "metrics": registry.dump(),
        "profiles": {
            system: profile_to_dict(p)
            for system, p in result.profiles.items()
        },
        "lint": None if result.lint is None else result.lint.to_dict(),
        "samples": None if sampler is None else sampler.collapsed(),
    }


@dataclass(frozen=True)
class ExecutorConfig:
    """Knobs of the job runner."""

    jobs: int = 1
    #: Per-job wall-clock limit, pool mode only; ``None`` disables.
    timeout_s: Optional[float] = None
    #: Re-attempts after the first failure (total attempts = retries + 1).
    retries: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    force_serial: bool = False

    def backoff_for(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        return self.backoff_s * (self.backoff_factor ** (attempt - 1))


@dataclass
class JobOutcome:
    """What one successfully executed job produced."""

    job: DesignJob
    summary: Dict[str, Any]
    #: Full result, only available from in-process (serial) execution.
    result: Optional[ExperimentResult]
    attempts: int
    duration_s: float
    #: Simulation profiles (JSON-safe dicts keyed by system label),
    #: populated only when the runner executes with ``profile=True``.
    profiles: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Serialized static-analysis report (``AnalysisReport.to_dict()``),
    #: populated only when the runner executes with ``lint=True``.
    lint: Optional[Dict[str, Any]] = None
    #: Collapsed-stack text from the wall-clock sampler, populated only
    #: when the runner executes with ``sample_interval_s`` set.
    samples: Optional[str] = None


class JobRunner:
    """Executes batches of :class:`DesignJob`, parallel when possible.

    With a ``tracer`` and/or ``metrics`` registry attached, execution is
    instrumented end to end: serial jobs trace straight into the shared
    tracer; pool jobs run :func:`run_job_instrumented` in the worker and
    the runner merges the returned spans/metrics on arrival. Injected
    custom ``runner`` callables are never wrapped — their payload shape
    is the caller's contract.
    """

    def __init__(
        self,
        config: ExecutorConfig = ExecutorConfig(),
        runner: Optional[Callable[[DesignJob], Dict[str, Any]]] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        profile: bool = False,
        lint: bool = False,
        events: EventLog = NULL_LOG,
        sim_backend: Optional[str] = None,
        sample_interval_s: Optional[float] = None,
    ) -> None:
        self.config = config
        self._runner = runner
        self.tracer = tracer
        self.metrics = metrics
        #: Wall-clock stack-sampling interval for executed jobs
        #: (``None`` = no sampling). Ignored for injected custom
        #: runners, like ``profile``/``lint``.
        self.sample_interval_s = sample_interval_s
        #: Simulation backend name forwarded to every executed job
        #: (``None`` defers to env/default resolution in the worker).
        #: A plain string so it crosses the process-pool pickle boundary.
        self.sim_backend = sim_backend
        #: Runtime event log; pool recycles are worth an operator's
        #: attention (each one means a hung or crashed worker).
        self.events = events
        #: Collect simulation profiles on every executed job (ignored
        #: for injected custom runners, whose payload is their own).
        self.profile = profile
        #: Run the static analyzer on every executed job (ignored for
        #: injected custom runners, whose payload is their own).
        self.lint = lint
        #: "parallel" or "serial" — how the last batch actually ran.
        self.last_mode: str = "serial"
        # The worker pool is created lazily and *reused* across batches
        # (the old create-per-batch + shutdown(wait=False) pattern leaked
        # worker processes under repeated open/close); close() reaps it.
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._closed = False

    @property
    def _instrumented(self) -> bool:
        """Whether default execution should collect spans/metrics."""
        return self._runner is None and (
            (self.tracer is not None and self.tracer.enabled)
            or self.metrics is not None
        )

    def run(
        self,
        jobs: Sequence[DesignJob],
        trace_ids: Optional[Sequence[str]] = None,
    ) -> List[JobOutcome]:
        """Execute all jobs; preserves input order in the output.

        ``trace_ids`` (aligned with ``jobs``) carries each request's
        W3C trace id into the execution spans. It rides *next to* the
        jobs, never on them: a :class:`DesignJob` is frozen and
        fingerprinted, and a cache key must not depend on who asked.
        """
        if self._closed:
            raise ServiceError("job runner is closed")
        jobs = list(jobs)
        ids = self._aligned_trace_ids(jobs, trace_ids)
        if not jobs:
            return []
        pool = self._acquire_pool()
        if pool is None:
            self.last_mode = "serial"
            return [
                self._run_serial(job, trace_id)
                for job, trace_id in zip(jobs, ids)
            ]
        self.last_mode = "parallel"
        return self._run_pool(pool, jobs, ids)

    @staticmethod
    def _aligned_trace_ids(
        jobs: Sequence[DesignJob], trace_ids: Optional[Sequence[str]]
    ) -> List[str]:
        if trace_ids is None:
            return [""] * len(jobs)
        ids = ["" if t is None else str(t) for t in trace_ids]
        if len(ids) != len(jobs):
            raise ServiceError(
                f"trace_ids length {len(ids)} does not match "
                f"{len(jobs)} jobs"
            )
        return ids

    def close(self) -> None:
        """Shut the worker pool down and reap its processes.

        Idempotent; a closed runner rejects further :meth:`run` calls.
        ``wait=True`` is the whole point — the historical per-batch
        ``shutdown(wait=False)`` left orphaned workers behind, which
        repeated service open/close in one process turned into a leak.
        """
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    # -- serial -----------------------------------------------------------
    def _acquire_pool(self) -> Optional[ProcessPoolExecutor]:
        if self.config.jobs <= 1 or self.config.force_serial:
            return None
        if self._runner is not None and not _is_picklable(self._runner):
            return None
        with self._pool_lock:
            if self._closed:
                raise ServiceError("job runner is closed")
            if self._pool is None:
                try:
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.config.jobs
                    )
                except (OSError, ValueError, NotImplementedError, ImportError):
                    return None
            return self._pool

    def _recycle_pool(self, pool: ProcessPoolExecutor,
                      reason: str = "broken") -> None:
        """Discard a broken/hung pool; the next batch builds a fresh one."""
        with self._pool_lock:
            if self._pool is pool:
                self._pool = None
        pool.shutdown(wait=False, cancel_futures=True)
        if self.events.enabled:
            self.events.emit("pool_recycle", reason=reason)

    def _make_sampler(self) -> Optional[Any]:
        """A started stack sampler over this thread, if configured."""
        if self._runner is not None or self.sample_interval_s is None:
            return None
        from ..obs.flight.sampler import StackSampler

        sampler = StackSampler(
            interval_s=self.sample_interval_s,
            threads=[threading.get_ident()],
        )
        sampler.start()
        return sampler

    def _run_serial(self, job: DesignJob, trace_id: str = "") -> JobOutcome:
        last_error = ""
        for attempt in range(1, self.config.retries + 2):
            start = time.perf_counter()
            sampler = self._make_sampler()
            try:
                profiles: Dict[str, Dict[str, Any]] = {}
                lint: Optional[Dict[str, Any]] = None
                if self._runner is not None:
                    summary = self._runner(job)
                    result = None
                else:
                    if self.tracer is not None and self.tracer.enabled:
                        # Root "job" span carries the request's trace id
                        # so the pipeline spans below it join the HTTP
                        # trace.
                        with self.tracer.span(
                            "job", category="worker", app=job.app,
                            trace_id=trace_id,
                        ):
                            result, summary = execute_job(
                                job, tracer=self.tracer,
                                profile=self.profile, lint=self.lint,
                                sim_backend=self.sim_backend,
                            )
                    else:
                        result, summary = execute_job(
                            job, tracer=self.tracer,
                            profile=self.profile, lint=self.lint,
                            sim_backend=self.sim_backend,
                        )
                    profiles = {
                        system: profile_to_dict(p)
                        for system, p in result.profiles.items()
                    }
                    if result.lint is not None:
                        lint = result.lint.to_dict()
                    if self.metrics is not None:
                        self.metrics.observe(
                            "worker_job_seconds",
                            time.perf_counter() - start,
                            labels={"app": job.app},
                        )
                        self.metrics.incr(
                            "worker_jobs", labels={"app": job.app}
                        )
                if sampler is not None:
                    sampler.stop()
                return JobOutcome(
                    job=job,
                    summary=summary,
                    result=result,
                    attempts=attempt,
                    duration_s=time.perf_counter() - start,
                    profiles=profiles,
                    lint=lint,
                    samples=(
                        sampler.collapsed() if sampler is not None else None
                    ),
                )
            except Exception as exc:
                last_error = str(exc) or type(exc).__name__
                if attempt <= self.config.retries:
                    time.sleep(self.config.backoff_for(attempt))
            finally:
                if sampler is not None:
                    sampler.stop()
        raise JobExecutionError(
            f"job {job.app} failed after {self.config.retries + 1} attempts: "
            f"{last_error}",
            fingerprint=job.fingerprint(),
            attempts=self.config.retries + 1,
            last_error=last_error,
        )

    # -- parallel ---------------------------------------------------------
    def _run_pool(
        self, pool: ProcessPoolExecutor, jobs: List[DesignJob],
        trace_ids: Optional[List[str]] = None,
    ) -> List[JobOutcome]:
        trace_ids = trace_ids or [""] * len(jobs)
        wrapped = self._runner is None and (
            self._instrumented or self.profile or self.lint
            or self.sample_interval_s is not None
        )
        if self._runner is not None:
            func = self._runner
        elif wrapped:
            # partial (not a lambda) so the callable stays picklable.
            func = partial(
                run_job_instrumented, profile=self.profile, lint=self.lint,
                sim_backend=self.sim_backend,
                sample_interval_s=self.sample_interval_s,
            )
        elif self.sim_backend is not None:
            func = partial(run_job_summary, sim_backend=self.sim_backend)
        else:
            func = run_job_summary
        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
        attempts = [0] * len(jobs)
        pending = list(range(len(jobs)))
        while pending:
            futures = {}
            starts = {}
            for i in pending:
                attempts[i] += 1
                starts[i] = time.perf_counter()
                if wrapped:
                    # Only the instrumented entry point knows what to do
                    # with a trace id; plain/custom runners keep their
                    # one-argument contract.
                    futures[i] = pool.submit(
                        func, jobs[i], trace_id=trace_ids[i]
                    )
                else:
                    futures[i] = pool.submit(func, jobs[i])
            failed: List[Tuple[int, str, bool]] = []
            recycle = False
            for i in pending:
                try:
                    summary = futures[i].result(timeout=self.config.timeout_s)
                    profiles: Dict[str, Dict[str, Any]] = {}
                    lint: Optional[Dict[str, Any]] = None
                    samples: Optional[str] = None
                    if wrapped:
                        summary, profiles, lint, samples = (
                            self._absorb_payload(summary)
                        )
                    outcomes[i] = JobOutcome(
                        job=jobs[i],
                        summary=summary,
                        result=None,
                        attempts=attempts[i],
                        duration_s=time.perf_counter() - starts[i],
                        profiles=profiles,
                        lint=lint,
                        samples=samples,
                    )
                except FutureTimeout:
                    futures[i].cancel()
                    recycle = True  # a hung job still occupies its worker
                    failed.append(
                        (i, f"timed out after {self.config.timeout_s}s", True)
                    )
                except BrokenProcessPool as exc:
                    recycle = True
                    failed.append((i, str(exc) or type(exc).__name__, False))
                except Exception as exc:
                    failed.append((i, str(exc) or type(exc).__name__, False))
            pending = []
            for i, message, timed_out in failed:
                if attempts[i] > self.config.retries:
                    cls = JobTimeoutError if timed_out else JobExecutionError
                    raise cls(
                        f"job {jobs[i].app} failed after {attempts[i]} "
                        f"attempts: {message}",
                        fingerprint=jobs[i].fingerprint(),
                        attempts=attempts[i],
                        last_error=message,
                    )
                pending.append(i)
            if recycle:
                self._recycle_pool(pool, reason="timeout-or-broken")
                fresh = self._acquire_pool() if pending else None
                if pending and fresh is None:
                    # No replacement pool: finish the stragglers serially
                    # (each gets its own full retry budget there).
                    for i in pending:
                        outcomes[i] = self._run_serial(jobs[i], trace_ids[i])
                    pending = []
                else:
                    pool = fresh if fresh is not None else pool
            if pending:
                time.sleep(self.config.backoff_for(max(attempts[i] for i in pending)))
        return [o for o in outcomes if o is not None]

    def _absorb_payload(
        self, payload: Dict[str, Any]
    ) -> Tuple[
        Dict[str, Any],
        Dict[str, Dict[str, Any]],
        Optional[Dict[str, Any]],
        Optional[str],
    ]:
        """Merge a :func:`run_job_instrumented` payload.

        Returns the job summary plus any simulation profiles, lint
        report, and collapsed stack samples the worker shipped
        alongside it.
        """
        if self.tracer is not None:
            self.tracer.merge(payload.get("spans", ()))
        if self.metrics is not None:
            self.metrics.merge(payload.get("metrics", {}))
        return (
            payload["summary"],
            payload.get("profiles", {}),
            payload.get("lint"),
            payload.get("samples"),
        )


def _is_picklable(obj: Any) -> bool:
    import pickle

    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False
