"""Immutable design-job specifications with content-addressed identity.

A :class:`DesignJob` captures *everything* that determines the outcome
of one profile→design→simulate pipeline run: the application, workload
scale, RNG seed, the hardware :class:`~repro.sim.systems.SystemParams`,
the designer toggles, and whether simulation is requested. Because the
flow is deterministic in these inputs, two jobs with the same
:meth:`~DesignJob.fingerprint` are guaranteed to produce the same
result — that is what makes the service cache and duplicate-job
coalescing sound.

The fingerprint is a SHA-256 over the job's canonical JSON document
(:func:`repro.io.canonical_json`), stamped with the library-wide
:data:`repro.io.FORMAT_VERSION` so cached results are invalidated
whenever the serialization format (and hence potentially the result
shape) moves.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple, Union

from .. import io as reproio
from ..apps.registry import APP_NAMES
from ..errors import ConfigurationError
from ..flow import DESIGN_TOGGLE_FIELDS, GRAPH_SOURCES
from ..sim.systems import SystemParams

#: Document kind stamped into serialized jobs.
JOB_KIND = "design-job"


@dataclass(frozen=True)
class DesignJob:
    """One unit of work for the design service."""

    app: str
    scale: int = 1
    seed: int = 2014
    params: SystemParams = SystemParams()
    simulate: bool = True
    #: Designer toggle overrides, stored as sorted ``(name, value)``
    #: pairs so the job stays hashable; accepts a mapping on construction.
    design: Tuple[Tuple[str, Any], ...] = ()
    #: How the communication graph is derived (``repro.flow.GRAPH_SOURCES``):
    #: a profiled trace or the static analyzer. Part of the fingerprint —
    #: the two sources legitimately differ on data-dependent edges.
    graph_source: str = "trace"

    def __post_init__(self) -> None:
        if self.app not in APP_NAMES:
            raise ConfigurationError(
                f"unknown application {self.app!r} (have: {list(APP_NAMES)})"
            )
        if self.scale < 1:
            raise ConfigurationError(f"scale must be >= 1, got {self.scale}")
        if self.graph_source not in GRAPH_SOURCES:
            raise ConfigurationError(
                f"unknown graph_source {self.graph_source!r} "
                f"(allowed: {', '.join(GRAPH_SOURCES)})"
            )
        design = self.design
        if isinstance(design, Mapping):
            design = tuple(sorted(design.items()))
            object.__setattr__(self, "design", design)
        else:
            object.__setattr__(self, "design", tuple(sorted(design)))
        unknown = {k for k, _ in self.design} - DESIGN_TOGGLE_FIELDS
        if unknown:
            raise ConfigurationError(
                f"unknown design toggles: {sorted(unknown)} "
                f"(allowed: {sorted(DESIGN_TOGGLE_FIELDS)})"
            )

    @property
    def design_overrides(self) -> Dict[str, Any]:
        """The designer toggles as a plain mapping."""
        return dict(self.design)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize with the standard ``kind``/``version`` envelope."""
        return {
            "kind": JOB_KIND,
            "version": reproio.FORMAT_VERSION,
            "app": self.app,
            "scale": self.scale,
            "seed": self.seed,
            "simulate": self.simulate,
            "graph_source": self.graph_source,
            "params": dataclasses.asdict(self.params),
            "design": {k: v for k, v in self.design},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DesignJob":
        """Deserialize; validates through the normal constructor."""
        reproio.validate_document(data, JOB_KIND)
        return cls(
            app=data["app"],
            scale=data["scale"],
            seed=data["seed"],
            simulate=data["simulate"],
            params=SystemParams(**data["params"]),
            design=tuple(sorted(data["design"].items())),
            graph_source=data.get("graph_source", "trace"),
        )

    def fingerprint(self) -> str:
        """Stable content hash identifying this job (and its result)."""
        doc = reproio.canonical_json(self.to_dict())
        return hashlib.sha256(doc.encode("ascii")).hexdigest()


def job_for_point(
    app: str,
    scale: int,
    seed: int,
    params: Union[SystemParams, Mapping[str, Any]],
    simulate: bool,
) -> DesignJob:
    """Build a job from raw sweep-grid coordinates."""
    if not isinstance(params, SystemParams):
        params = SystemParams(**dict(params))
    return DesignJob(
        app=app, scale=scale, seed=seed, params=params, simulate=simulate
    )
