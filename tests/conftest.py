"""Shared fixtures.

The expensive fixtures (profiled applications, full experiment results)
are session-scoped: the applications are deterministic (fixed seeds), so
sharing one profile across tests changes nothing but the runtime.
"""

from __future__ import annotations

import pytest

from repro.apps import fit_application, get_application
from repro.apps.registry import APP_NAMES
from repro.flow import run_all, run_experiment
from repro.sim.systems import SystemParams


@pytest.fixture(scope="session")
def system_params():
    return SystemParams()


@pytest.fixture(scope="session")
def theta(system_params):
    return system_params.theta_s_per_byte()


@pytest.fixture(scope="session")
def fitted_apps(theta):
    """Calibrated graphs for all four applications."""
    return {
        name: fit_application(get_application(name), theta)
        for name in APP_NAMES
    }


@pytest.fixture(scope="session")
def all_results():
    """Full experiment results (analytic + simulated) for all apps."""
    return run_all()


@pytest.fixture(scope="session")
def jpeg_result(all_results):
    return all_results["jpeg"]
