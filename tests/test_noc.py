"""Tests for the NoC: routing, links, mesh transport, WRR arbitration."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import Engine
from repro.sim.noc import NocMesh, NocParams, Packet, adjacent, xy_route
from repro.sim.noc.routing import hop_count


class TestRouting:
    def test_same_node_empty_route(self):
        assert xy_route((1, 1), (1, 1)) == []

    def test_x_first_then_y(self):
        path = xy_route((0, 0), (2, 1))
        assert path == [
            ((0, 0), (1, 0)),
            ((1, 0), (2, 0)),
            ((2, 0), (2, 1)),
        ]

    def test_negative_directions(self):
        path = xy_route((2, 2), (0, 0))
        assert len(path) == 4
        assert path[0] == ((2, 2), (1, 2))

    def test_all_hops_adjacent(self):
        for src in [(0, 0), (3, 1), (2, 2)]:
            for dst in [(0, 0), (1, 3), (3, 3)]:
                for a, b in xy_route(src, dst):
                    assert adjacent(a, b)

    def test_route_length_is_manhattan(self):
        assert len(xy_route((0, 0), (3, 2))) == hop_count((0, 0), (3, 2)) == 5

    def test_deterministic(self):
        assert xy_route((0, 0), (2, 2)) == xy_route((0, 0), (2, 2))


class TestPacket:
    def test_empty_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            Packet(0, (0, 0), (1, 1), 0)


class TestNocParams:
    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            NocParams(width=0, height=2)

    def test_packet_smaller_than_flit_rejected(self):
        with pytest.raises(ConfigurationError):
            NocParams(width=2, height=2, link_width_bytes=8, max_packet_bytes=4)


def mk_mesh(w=3, h=3, **kw):
    eng = Engine()
    mesh = NocMesh(eng, NocParams(width=w, height=h, **kw))
    return eng, mesh


class TestMeshTopology:
    def test_link_count(self):
        _, mesh = mk_mesh(3, 3)
        # 2*W*H - W - H bidirectional pairs, times 2 directions.
        assert len(mesh.links) == 2 * (2 * 9 - 3 - 3)

    def test_1d_mesh(self):
        _, mesh = mk_mesh(4, 1)
        assert len(mesh.links) == 2 * 3


class TestTransport:
    def test_send_matches_model(self):
        eng, mesh = mk_mesh()

        def proc():
            yield from mesh.send((0, 0), (2, 1), 1000, flow="t")

        eng.process(proc())
        t = eng.run()
        assert t == pytest.approx(mesh.transfer_seconds((0, 0), (2, 1), 1000))
        assert mesh.bytes_delivered == 1000
        assert mesh.packets_delivered == 1

    def test_large_transfer_segments(self):
        eng, mesh = mk_mesh(max_packet_bytes=4096)

        def proc():
            yield from mesh.send((0, 0), (1, 0), 10_000)

        eng.process(proc())
        eng.run()
        assert mesh.packets_delivered == 3

    def test_longer_routes_take_longer(self):
        _, mesh = mk_mesh()
        t1 = mesh.transfer_seconds((0, 0), (1, 0), 4096)
        t2 = mesh.transfer_seconds((0, 0), (2, 2), 4096)
        assert t2 > t1

    def test_disjoint_flows_parallel(self):
        """Flows on disjoint links complete as if alone."""
        eng, mesh = mk_mesh()
        ends = {}

        def proc(tag, src, dst):
            yield from mesh.send(src, dst, 4096, flow=tag)
            ends[tag] = eng.now

        eng.process(proc("a", (0, 0), (1, 0)))
        eng.process(proc("b", (0, 2), (1, 2)))
        eng.run()
        solo = mesh.transfer_seconds((0, 0), (1, 0), 4096)
        assert ends["a"] == pytest.approx(solo)
        assert ends["b"] == pytest.approx(solo)

    def test_shared_link_serializes(self):
        eng, mesh = mk_mesh()
        ends = {}

        def proc(tag, src):
            yield from mesh.send(src, (2, 0), 4096, flow=tag)
            ends[tag] = eng.now

        # Both flows traverse the (1,0)->(2,0) link.
        eng.process(proc("a", (1, 0)))
        eng.process(proc("b", (1, 0)))
        eng.run()
        solo = mesh.transfer_seconds((1, 0), (2, 0), 4096)
        assert max(ends.values()) > 1.5 * solo

    def test_link_stats_recorded(self):
        eng, mesh = mk_mesh()

        def proc():
            yield from mesh.send((0, 0), (1, 0), 512)

        eng.process(proc())
        eng.run()
        link = mesh.links[((0, 0), (1, 0))]
        assert link.bytes_moved == 512
        assert link.packets == 1

    def test_out_of_mesh_rejected(self):
        eng, mesh = mk_mesh(2, 2)

        def proc():
            yield from mesh.send((0, 0), (5, 5), 10)

        eng.process(proc())
        with pytest.raises(SimulationError):
            eng.run()

    def test_zero_bytes_rejected(self):
        eng, mesh = mk_mesh()

        def proc():
            yield from mesh.send((0, 0), (1, 0), 0)

        eng.process(proc())
        with pytest.raises(SimulationError):
            eng.run()

    def test_wrr_interleaves_contending_flows(self):
        """With two packetized flows sharing a link, completions
        interleave rather than one flow finishing entirely first."""
        eng, mesh = mk_mesh(max_packet_bytes=1024)
        history = []

        def proc(tag, src):
            yield from mesh.send(src, (2, 0), 4096, flow=tag)
            history.append(tag)

        eng.process(proc("a", (0, 0)))  # enters shared link from west
        eng.process(proc("b", (1, 0)))  # injected locally at (1,0)
        eng.run()
        # Both complete; neither is starved to the very end.
        assert set(history) == {"a", "b"}
