"""The differential proof machinery: static vs traced graphs."""

import dataclasses

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.static import STATIC_APP_NAMES
from repro.static.analyzer import StaticGraph
from repro.static.crosscheck import (
    STATUS_EXACT,
    STATUS_MISMATCH,
    STATUS_STATIC_ONLY,
    STATUS_TRACE_ONLY,
    STATUS_WITHIN,
    _edge_status,
    compare_graphs,
    crosscheck_app,
    crosscheck_apps,
    crosscheck_to_dict,
    render_crosscheck,
    validate_crosscheck_doc,
)
from repro.static.ir import Extent


# -- the four apps pass ---------------------------------------------------
@pytest.mark.parametrize("name", STATIC_APP_NAMES)
def test_every_app_crosschecks_clean(name):
    check = crosscheck_app(name)
    assert check.ok, check.failures()
    assert check.kk_order_ok
    if name == "jpeg":
        assert check.bounded_edges == 2
        assert check.approximations == 2
    else:
        assert check.bounded_edges == 0
        assert check.approximations == 0
        assert check.exact_edges == len(check.edges)


def test_crosscheck_scales_beyond_one():
    check = crosscheck_app("canny", scale=2)
    assert check.ok and check.scale == 2


# -- edge-status logic ----------------------------------------------------
def test_edge_status_matrix():
    assert _edge_status(None, 64) == STATUS_TRACE_ONLY
    assert _edge_status(Extent.exactly(64), None) == STATUS_STATIC_ONLY
    # A bounded edge admitting zero bytes may be absent from the trace.
    assert _edge_status(Extent.bounded(0, 64, 8), None) == STATUS_WITHIN
    assert _edge_status(Extent.bounded(1, 64, 8), None) == STATUS_STATIC_ONLY
    assert _edge_status(Extent.exactly(64), 64) == STATUS_EXACT
    assert _edge_status(Extent.exactly(64), 63) == STATUS_MISMATCH
    assert _edge_status(Extent.bounded(1, 64, 8), 64) == STATUS_WITHIN
    assert _edge_status(Extent.bounded(1, 64, 8), 65) == STATUS_MISMATCH


# -- tamper detection -----------------------------------------------------
def _tampered(static, **field_overrides):
    return dataclasses.replace(static, **field_overrides)


def test_compare_graphs_detects_byte_drift():
    from repro.apps import get_application
    from repro.core.commgraph import CommGraph
    from repro.core.kernel import KernelSpec
    from repro.static.fit import describe_application

    app = get_application("canny")
    profile = app.profile()
    names = app.kernel_names()
    traced = CommGraph.from_profile(
        profile, [KernelSpec(n, 0.0, 0.0) for n in names]
    )
    work = {n: profile.function(n).work for n in names}
    static = describe_application(app)

    # Untampered: clean.
    assert compare_graphs(static, traced, work).ok

    # One byte off on one kernel edge: mismatch, named in failures().
    edge = next(iter(static.kk_edges))
    bad_edges = dict(static.kk_edges)
    bad_edges[edge] = Extent.exactly(bad_edges[edge].nominal + 1)
    bad = _tampered(static, kk_edges=bad_edges)
    check = compare_graphs(bad, traced, work)
    assert not check.ok
    assert any(e.status == STATUS_MISMATCH for e in check.edges)
    assert any(edge[0] in line for line in check.failures())

    # Work drift is caught bit-for-bit.
    bad_work = dict(static.work)
    kernel = next(iter(bad_work))
    bad_work[kernel] += 1.0
    check = compare_graphs(_tampered(static, work=bad_work), traced, work)
    assert not check.ok
    assert any(kernel in line for line in check.failures())

    # A phantom static-only edge fails too.
    extra = dict(static.kk_edges)
    extra[("ghost", "ghost2")] = Extent.exactly(8)
    check = compare_graphs(_tampered(static, kk_edges=extra), traced, work)
    assert not check.ok
    assert any(e.status == STATUS_STATIC_ONLY for e in check.edges)


# -- documents and rendering ----------------------------------------------
def test_crosscheck_document_round_trip():
    checks = crosscheck_apps(["canny", "jpeg"])
    doc = crosscheck_to_dict(checks)
    assert doc["kind"] == "static-diff"
    assert doc["ok"] is True
    assert set(doc["apps"]) == {"canny", "jpeg"}
    jpeg = doc["apps"]["jpeg"]
    assert jpeg["bounded_edges"] == 2 == jpeg["approximations"]
    validate_crosscheck_doc(doc)
    doc["kind"] = "wrong"
    with pytest.raises(ReproError):
        validate_crosscheck_doc(doc)


def test_crosscheck_apps_rejects_empty_list():
    with pytest.raises(ConfigurationError):
        crosscheck_apps([])


def test_render_crosscheck_names_every_edge():
    check = crosscheck_app("jpeg")
    text = render_crosscheck(check)
    assert "jpeg: ok" in text
    assert "within-bounds" in text
    for e in check.edges:
        assert e.producer in text and e.consumer in text
