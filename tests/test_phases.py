"""Tests for phase-aware profiling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ProfilingError
from repro.profiling import AddressSpace, Tracer
from repro.profiling.phases import PhaseProfiler


def traced_store_load(tracer, producer, consumer, lo, hi):
    with tracer.context(producer):
        tracer.record_store(lo, hi)
    with tracer.context(consumer):
        tracer.record_load(lo, hi)


class TestSlicing:
    def test_per_phase_deltas(self):
        t = Tracer()
        p = PhaseProfiler(t)
        with p.phase("a"):
            traced_store_load(t, "x", "y", 0, 100)
        with p.phase("b"):
            traced_store_load(t, "x", "y", 0, 40)
        assert p.slices[0].edge_bytes == {("x", "y"): 100}
        assert p.slices[1].edge_bytes == {("x", "y"): 40}
        assert p.slices[1].total_bytes() == 40

    def test_quiet_phase_empty(self):
        t = Tracer()
        p = PhaseProfiler(t)
        with p.phase("quiet"):
            pass
        assert p.slices[0].edge_bytes == {}

    def test_nesting_rejected(self):
        p = PhaseProfiler(Tracer())
        with pytest.raises(ProfilingError):
            with p.phase("outer"):
                with p.phase("inner"):
                    pass

    def test_traffic_outside_phases_not_attributed(self):
        t = Tracer()
        p = PhaseProfiler(t)
        traced_store_load(t, "x", "y", 0, 100)  # before any phase
        with p.phase("a"):
            traced_store_load(t, "x", "y", 0, 10)
        assert p.slices[0].edge_bytes == {("x", "y"): 10}

    def test_slices_named(self):
        t = Tracer()
        p = PhaseProfiler(t)
        for i in range(3):
            with p.phase("step"):
                traced_store_load(t, "x", "y", 0, 10)
        with p.phase("teardown"):
            pass
        assert len(p.slices_named("step")) == 3


class TestStability:
    def test_stable_edges_min_max(self):
        t = Tracer()
        p = PhaseProfiler(t)
        with p.phase("s"):
            traced_store_load(t, "x", "y", 0, 100)
        with p.phase("s"):
            traced_store_load(t, "x", "y", 0, 80)
        assert p.stable_edges() == {("x", "y"): (80, 100)}

    def test_phase_only_edges(self):
        t = Tracer()
        p = PhaseProfiler(t)
        with p.phase("s"):
            traced_store_load(t, "x", "y", 0, 100)
        with p.phase("s"):
            traced_store_load(t, "x", "y", 0, 100)
            traced_store_load(t, "x", "z", 200, 300)
        assert p.phase_only_edges() == {("x", "z"): (1,)}

    def test_stationary_true_for_repeating_pattern(self):
        t = Tracer()
        p = PhaseProfiler(t)
        for _ in range(3):
            with p.phase("step"):
                traced_store_load(t, "x", "y", 0, 100)
        assert p.is_stationary()

    def test_stationary_false_for_varying_volume(self):
        t = Tracer()
        p = PhaseProfiler(t)
        with p.phase("s"):
            traced_store_load(t, "x", "y", 0, 100)
        with p.phase("s"):
            traced_store_load(t, "x", "y", 0, 10)
        assert not p.is_stationary()

    def test_single_phase_trivially_stationary(self):
        t = Tracer()
        p = PhaseProfiler(t)
        with p.phase("only"):
            traced_store_load(t, "x", "y", 0, 10)
        assert p.is_stationary()

    def test_union_edge_bytes(self):
        t = Tracer()
        p = PhaseProfiler(t)
        with p.phase("a"):
            traced_store_load(t, "x", "y", 0, 100)
        with p.phase("b"):
            traced_store_load(t, "x", "y", 0, 50)
            traced_store_load(t, "x", "z", 200, 220)
        assert p.union_edge_bytes() == {("x", "y"): 150, ("x", "z"): 20}

    def test_union_matches_whole_run_profile(self):
        """When every access happens inside a phase, the phase union
        equals the tracer's cumulative inter-function byte counts."""
        t = Tracer()
        p = PhaseProfiler(t)
        for i in range(3):
            with p.phase("step"):
                traced_store_load(t, "x", "y", i * 10, i * 10 + 7)
        cumulative = {k: b for k, (b, _) in t.edges().items()}
        assert p.union_edge_bytes() == cumulative


class TestFluidStationarity:
    def test_fluid_steps_repeat_the_pattern(self):
        """The fluid solver's kernel-to-kernel traffic is per-step
        stationary (steady state after the first step) — the property
        that justifies designing its interconnect from one profile."""
        from repro.apps.fluid import FluidApp

        app = FluidApp(steps=3)
        tracer = Tracer()
        space = AddressSpace(tracer)
        profiler = PhaseProfiler(tracer)

        # Re-run the app manually, marking each solver step as a phase.
        # (Reuses the app's execute by instrumenting around iterations
        # is not possible without hooks, so we run whole app in one
        # phase per step boundary via the steps parameter instead.)
        one = FluidApp(steps=1)
        with profiler.phase("steps1"):
            one.execute(tracer, space)
        t2 = Tracer()
        s2 = AddressSpace(t2)
        p2 = PhaseProfiler(t2)
        two = FluidApp(steps=2)
        with p2.phase("steps2"):
            two.execute(t2, s2)

        # Kernel-to-kernel edges of the 2-step run are a superset of the
        # 1-step run (feedback edges appear from step 2 on), and the
        # repeated-edge volumes scale with the step count.
        e1 = profiler.slices[0].edge_bytes
        e2 = p2.slices[0].edge_bytes
        kernels = {"diffuse", "project", "advect"}
        kk1 = {k: v for k, v in e1.items() if set(k) <= kernels}
        kk2 = {k: v for k, v in e2.items() if set(k) <= kernels}
        assert set(kk1) <= set(kk2)
        for edge, v1 in kk1.items():
            assert kk2[edge] >= v1
