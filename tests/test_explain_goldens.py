"""Golden regression for ``repro explain --json`` on the paper apps.

The provenance event list is the designer's machine-readable decision
log; downstream tooling (and DESIGN.md's examples) depend on its exact
content *and* ordering. These tests pin the full JSON output for all
four paper applications. Regenerate after an intentional behaviour
change with::

    for app in canny jpeg klt fluid; do
        PYTHONPATH=src python -m repro explain $app --json \
            > tests/goldens/explain_$app.json
    done
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.apps.registry import APP_NAMES
from repro.cli import main

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


def explain_json(app: str, capsys) -> str:
    assert main(["explain", app, "--json"]) == 0
    return capsys.readouterr().out


@pytest.mark.parametrize("app", APP_NAMES)
def test_explain_json_matches_golden(app, capsys):
    golden = (GOLDEN_DIR / f"explain_{app}.json").read_text()
    assert explain_json(app, capsys) == golden


@pytest.mark.parametrize("app", APP_NAMES)
def test_explain_json_event_ordering_is_stable(app, capsys):
    """Sequence numbers are contiguous and sorted — the ordering the
    golden files rely on is structural, not incidental."""
    events = json.loads(explain_json(app, capsys))
    assert [e["seq"] for e in events] == list(range(len(events)))
    assert events[0]["stage"] == "config"


def test_explain_json_is_deterministic(capsys):
    runs = {explain_json("jpeg", capsys) for _ in range(3)}
    assert len(runs) == 1
