"""Tests for kernel duplication (Δ_dp) and its graph transformation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CommGraph, KernelSpec, apply_duplication, decide_duplications
from repro.core.duplication import delta_dp_seconds, split_bytes
from repro.hw.device import Device
from repro.hw.resources import ResourceCost
from repro.units import KERNEL_CLOCK


def mk_graph(parallelizable=("b",), res_luts=1000):
    ks = {
        n: KernelSpec(
            n,
            tau_cycles=tau,
            sw_cycles=tau * 8,
            parallelizable=(n in parallelizable),
            resources=ResourceCost(res_luts, res_luts),
        )
        for n, tau in (("a", 1000.0), ("b", 5000.0), ("c", 2000.0))
    }
    return CommGraph(
        kernels=ks,
        kk_edges={("a", "b"): 101, ("b", "c"): 50},
        host_in={"a": 200, "b": 33},
        host_out={"c": 60},
    )


class TestDeltaDp:
    def test_formula(self):
        tau_s = KERNEL_CLOCK.cycles_to_seconds(5000.0)
        assert delta_dp_seconds(5000.0, 0.0) == pytest.approx(tau_s / 2)
        assert delta_dp_seconds(5000.0, tau_s) == pytest.approx(-tau_s / 2)

    def test_split_bytes_conserves(self):
        for n in (0, 1, 2, 101, 4096):
            a, b = split_bytes(n)
            assert a + b == n
            assert abs(a - b) <= 1


class TestApplyDuplication:
    def test_kernel_replaced_by_two_halves(self):
        g = apply_duplication(mk_graph(), "b")
        names = g.kernel_names()
        assert "b" not in names
        assert "b#0" in names and "b#1" in names
        assert g.kernel("b#0").tau_cycles == 2500.0
        assert g.kernel("b#0").sw_cycles == 20000.0

    def test_edges_split_and_conserved(self):
        g0 = mk_graph()
        g = apply_duplication(g0, "b")
        assert g.edge_bytes("a", "b#0") + g.edge_bytes("a", "b#1") == 101
        assert g.edge_bytes("b#0", "c") + g.edge_bytes("b#1", "c") == 50
        assert g.total_kernel_traffic() == g0.total_kernel_traffic()

    def test_host_flows_split(self):
        g = apply_duplication(mk_graph(), "b")
        assert g.d_h_in("b#0") + g.d_h_in("b#1") == 33

    def test_untouched_kernels_preserved(self):
        g = apply_duplication(mk_graph(), "b")
        assert g.d_h_in("a") == 200
        assert g.d_h_out("c") == 60

    def test_copies_keep_full_footprint(self):
        g = apply_duplication(mk_graph(), "b")
        assert g.kernel("b#0").resources.luts == 1000


class TestDecideDuplications:
    BIG = Device("big", 10**6, 10**6, 10**6)
    TINY = Device("tiny", 4000, 4000, 10**6)

    def test_duplicates_hottest_parallelizable(self):
        g, decisions = decide_duplications(
            mk_graph(), self.BIG, overhead_s=0.0,
            committed_cost=ResourceCost(0, 0),
        )
        applied = [d for d in decisions if d.applied]
        assert [d.kernel for d in applied] == ["b"]
        assert "b#0" in g.kernel_names()

    def test_non_parallelizable_skipped(self):
        g, decisions = decide_duplications(
            mk_graph(parallelizable=()), self.BIG, overhead_s=0.0,
            committed_cost=ResourceCost(0, 0),
        )
        assert all(not d.applied for d in decisions)
        assert g.kernel_names() == ("a", "b", "c")

    def test_negative_delta_skipped(self):
        huge_overhead = 1.0  # one second >> tau/2
        _, decisions = decide_duplications(
            mk_graph(), self.BIG, overhead_s=huge_overhead,
            committed_cost=ResourceCost(0, 0),
        )
        b = next(d for d in decisions if d.kernel == "b")
        assert not b.applied
        assert b.reason == "delta_dp <= 0"

    def test_resource_budget_blocks(self):
        _, decisions = decide_duplications(
            mk_graph(), self.TINY, overhead_s=0.0,
            committed_cost=ResourceCost(3000, 3000),
        )
        b = next(d for d in decisions if d.kernel == "b")
        assert not b.applied
        assert "resources" in b.reason

    def test_max_duplications_budget(self):
        g, decisions = decide_duplications(
            mk_graph(parallelizable=("a", "b", "c")),
            self.BIG,
            overhead_s=0.0,
            committed_cost=ResourceCost(0, 0),
            max_duplications=1,
        )
        assert sum(d.applied for d in decisions) == 1
        # The hottest (b) wins the budget.
        assert next(d for d in decisions if d.applied).kernel == "b"

    def test_multiple_duplications_allowed(self):
        g, decisions = decide_duplications(
            mk_graph(parallelizable=("a", "b", "c")),
            self.BIG,
            overhead_s=0.0,
            committed_cost=ResourceCost(0, 0),
            max_duplications=3,
        )
        assert sum(d.applied for d in decisions) == 3
        assert len(g.kernel_names()) == 6


@settings(max_examples=50, deadline=None)
@given(
    e1=st.integers(1, 10**6),
    e2=st.integers(1, 10**6),
    h=st.integers(0, 10**6),
)
def test_duplication_conserves_traffic(e1, e2, h):
    ks = {
        "x": KernelSpec("x", 10.0, 10.0, parallelizable=True),
        "y": KernelSpec("y", 10.0, 10.0),
        "z": KernelSpec("z", 10.0, 10.0),
    }
    g = CommGraph(
        kernels=ks,
        kk_edges={("y", "x"): e1, ("x", "z"): e2},
        host_in={"x": h},
    )
    g2 = apply_duplication(g, "x")
    assert g2.total_kernel_traffic() == g.total_kernel_traffic()
    assert g2.d_k_in("x#0") + g2.d_k_in("x#1") == e1
    assert g2.d_k_out("x#0") + g2.d_k_out("x#1") == e2
