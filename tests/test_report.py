"""Tests for profile report rendering."""

from __future__ import annotations

from repro.profiling import (
    CommunicationProfile,
    FunctionStats,
    ProfileEdge,
    render_profile_graph,
    render_profile_table,
)
from repro.profiling.report import render_dot


def sample():
    return CommunicationProfile(
        [
            ProfileEdge("host", "dec", 2048, 2000),
            ProfileEdge("dec", "idct", 8192, 8192),
            ProfileEdge("idct", "host", 4096, 4096),
        ],
        [FunctionStats(n, 1, 0, 0, 1.0) for n in ("host", "dec", "idct")],
    )


def test_table_contains_all_edges():
    text = render_profile_table(sample())
    assert "producer" in text
    assert "dec" in text and "idct" in text
    assert "8192" in text


def test_table_limit():
    text = render_profile_table(sample(), limit=1)
    assert "8192" in text  # heaviest kept
    assert "2048" not in text


def test_table_empty():
    empty = CommunicationProfile([], [])
    assert "no inter-function" in render_profile_table(empty)


def test_graph_adjacency_lists_consumers():
    text = render_profile_graph(sample())
    assert "dec" in text
    assert "-> idct" in text
    assert "UMAs" in text


def test_graph_focus_filters_producers():
    text = render_profile_graph(sample(), focus=["dec"])
    assert text.startswith("dec")
    assert "host\n" not in text


def test_graph_empty():
    empty = CommunicationProfile([], [])
    assert "empty" in render_profile_graph(empty)


def test_dot_output_is_valid_digraph():
    dot = render_dot(sample(), name="g")
    assert dot.startswith("digraph g {")
    assert dot.rstrip().endswith("}")
    assert '"dec" -> "idct"' in dot


def test_byte_formatting_scales():
    big = CommunicationProfile(
        [ProfileEdge("a", "b", 50 * 1024 * 1024, 1024)],
        [FunctionStats("a", 1, 0, 0, 1.0)],
    )
    assert "MiB" in render_profile_graph(big)
