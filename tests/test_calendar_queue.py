"""Property tests for the fast event kernel's calendar queue.

The ordering contract is simple to state and load-bearing for the whole
backend-conformance story: :class:`~repro.sim.fastcore.calendar.
CalendarQueue` pops entries in exactly the order ``heapq`` would pop the
same ``(time, seq)`` tuples. Every test here reduces to that oracle —
random workloads, adversarial time distributions, interleaved push/pop,
resize churn, overflow migration, and the backward-pointer resets the
engine's ``run(until=...)`` re-insertion path exercises.
"""

from __future__ import annotations

import heapq
import math
import random

import pytest

from repro.errors import SimulationError
from repro.sim.fastcore.calendar import CalendarQueue


def heapq_order(entries):
    """The oracle: sorted by (time, seq) — what heapq would pop."""
    return sorted(entries)


class TestHeapqParity:
    """Random workloads pop in exact heapq order."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_push_then_drain(self, seed):
        rng = random.Random(f"calendar:{seed}")
        entries = [
            (rng.uniform(0, 10.0 ** rng.randint(-9, 3)), seq, object())
            for seq in range(rng.randint(1, 400))
        ]
        cq = CalendarQueue()
        for t, seq, item in entries:
            cq.push(t, seq, item)
        assert cq.drain() == heapq_order(entries)
        assert len(cq) == 0

    @pytest.mark.parametrize("seed", range(8))
    def test_interleaved_push_pop(self, seed):
        # The engine's actual access pattern: pops interleaved with
        # pushes whose times are >= the last popped time.
        rng = random.Random(f"calendar-interleave:{seed}")
        cq = CalendarQueue()
        shadow = []
        seq = 0
        now = 0.0
        popped = []
        expected = []
        for _ in range(600):
            if shadow and rng.random() < 0.45:
                expected.append(heapq.heappop(shadow))
                t, s, item = cq.pop()
                popped.append((t, s, item))
                now = t
            else:
                t = now + rng.uniform(0, 5.0 * 10.0 ** rng.randint(-6, 1))
                entry = (t, seq, f"e{seq}")
                heapq.heappush(shadow, entry)
                cq.push(*entry)
                seq += 1
        while shadow:
            expected.append(heapq.heappop(shadow))
            popped.append(cq.pop())
        assert popped == expected

    def test_fifo_within_equal_timestamps(self):
        # Equal times pop in seq (insertion) order — the property that
        # makes batched dispatch order-identical to one-at-a-time.
        cq = CalendarQueue()
        for seq in (3, 0, 4, 1, 2):
            cq.push(1.25, seq, f"item{seq}")
        assert [s for _, s, _ in cq.drain()] == [0, 1, 2, 3, 4]

    def test_pops_are_monotonic_in_time_seq(self):
        rng = random.Random("calendar-monotonic")
        cq = CalendarQueue()
        for seq in range(500):
            cq.push(rng.choice([0.0, 1e-9, 1e-3, 1.0, 512.0]), seq, None)
        prev = (-math.inf, -1)
        while len(cq):
            t, seq, _ = cq.pop()
            assert (t, seq) > prev
            prev = (t, seq)


class TestResizeAndOverflow:
    """Geometry changes never reorder or lose entries."""

    def test_grow_through_multiple_resizes(self):
        # Default wheel is 16 buckets; 5000 entries force many doublings.
        rng = random.Random("calendar-grow")
        entries = [(rng.uniform(0, 1e-3), seq, seq) for seq in range(5000)]
        cq = CalendarQueue()
        for e in entries:
            cq.push(*e)
        assert cq._nbuckets > 16
        assert cq.drain() == heapq_order(entries)

    def test_shrink_on_drain_down(self):
        rng = random.Random("calendar-shrink")
        entries = [(rng.uniform(0, 1.0), seq, seq) for seq in range(3000)]
        cq = CalendarQueue()
        for e in entries:
            cq.push(*e)
        grown = cq._nbuckets
        out = cq.drain()
        assert out == heapq_order(entries)
        assert cq._nbuckets < grown  # hysteresis shrank the wheel back

    def test_overflow_far_future_entries(self):
        # Times spanning 12 orders of magnitude: most land in overflow,
        # then migrate onto the wheel as the pointer catches up.
        cq = CalendarQueue(width=1e-9, nbuckets=16)
        entries = [
            (t, seq, seq)
            for seq, t in enumerate(
                [0.0, 1e-9, 1e-6, 1e-3, 1.0, 10.0, 100.0, 1e3]
            )
        ]
        for e in entries:
            cq.push(*e)
        assert cq.drain() == heapq_order(entries)

    def test_backward_push_after_peek(self):
        # run(until=...) pops an entry and pushes it back; meanwhile the
        # scan pointer may have advanced far past its bucket. The
        # backward push must reset the pointer, not orphan the entry.
        cq = CalendarQueue()
        cq.push(5.0, 0, "late")
        assert cq.peek_time() == 5.0  # advances the scan pointer
        t, seq, item = cq.pop()
        cq.push(t, seq, item)  # re-insert (the until path)
        cq.push(1.0, 1, "early")  # behind the pointer
        assert cq.drain() == [(1.0, 1, "early"), (5.0, 0, "late")]

    def test_mixed_scale_times_with_interleaved_pops(self):
        rng = random.Random("calendar-scales")
        entries = []
        for seq in range(800):
            scale = 10.0 ** rng.randint(-9, 2)
            entries.append((rng.uniform(0, scale), seq, seq))
        cq = CalendarQueue()
        for e in entries[:400]:
            cq.push(*e)
        got = [cq.pop() for _ in range(200)]
        for e in entries[400:]:
            cq.push(*e)
        got.extend(cq.drain())
        # Not globally sorted (late pushes may precede early pops'
        # times), but multiset-identical and each drain segment sorted.
        assert sorted(got) == heapq_order(entries)
        assert got[:200] == heapq_order(entries[:400])[:200]
        assert got[200:] == heapq_order(set(entries) - set(got[:200]))


class TestPopLe:
    """pop_le: the batched same-timestamp dispatch primitive."""

    def test_pops_only_at_or_below_limit(self):
        cq = CalendarQueue()
        cq.push(1.0, 0, "a")
        cq.push(1.0, 1, "b")
        cq.push(2.0, 2, "c")
        assert cq.pop_le(1.0) == (1.0, 0, "a")
        assert cq.pop_le(1.0) == (1.0, 1, "b")
        assert cq.pop_le(1.0) is None  # "c" is beyond the limit
        assert len(cq) == 1
        assert cq.pop() == (2.0, 2, "c")

    def test_empty_queue_returns_none(self):
        cq = CalendarQueue()
        assert cq.pop_le(math.inf) is None

    def test_refused_entry_stays_cached_and_pops_next(self):
        cq = CalendarQueue()
        cq.push(3.0, 0, "x")
        assert cq.pop_le(1.0) is None
        assert cq.peek_time() == 3.0
        assert cq.pop() == (3.0, 0, "x")


class TestValidationAndEdges:
    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            CalendarQueue().pop()

    def test_peek_empty_is_inf(self):
        assert CalendarQueue().peek_time() == math.inf

    @pytest.mark.parametrize("t", [-1.0, -1e-18, math.inf, math.nan])
    def test_invalid_times_rejected(self, t):
        with pytest.raises(SimulationError):
            CalendarQueue().push(t, 0, None)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(SimulationError):
            CalendarQueue(width=0.0)
        with pytest.raises(SimulationError):
            CalendarQueue(width=-1.0)
        with pytest.raises(SimulationError):
            CalendarQueue(nbuckets=12)  # not a power of two

    def test_time_zero_is_valid(self):
        cq = CalendarQueue()
        cq.push(0.0, 0, "origin")
        assert cq.pop() == (0.0, 0, "origin")

    def test_push_never_invalidates_a_better_cache_silently(self):
        # A push that could beat the cached minimum must drop the cache.
        cq = CalendarQueue()
        cq.push(2.0, 0, "b")
        assert cq.peek_time() == 2.0  # populates the cache
        cq.push(1.0, 1, "a")
        assert cq.peek_time() == 1.0
        assert cq.pop() == (1.0, 1, "a")
