"""Tests for NoC QoS weight assignment."""

from __future__ import annotations

import pytest

from repro.core import CommGraph, DesignConfig, KernelSpec, design_interconnect
from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.sim.noc import (
    NocMesh,
    NocParams,
    apply_qos_weights,
    flow_link_loads,
    weights_from_loads,
)
from repro.sim.systems import SystemParams, simulate_proposed

THETA = 1.3e-9


def star_graph():
    """Two producers feed one consumer memory with skewed traffic."""
    ks = {
        "heavy": KernelSpec("heavy", 10_000.0, 100_000.0),
        "light": KernelSpec("light", 10_000.0, 100_000.0),
        "sink_a": KernelSpec("sink_a", 10_000.0, 100_000.0),
        "sink_b": KernelSpec("sink_b", 10_000.0, 100_000.0),
    }
    return CommGraph(
        kernels=ks,
        kk_edges={
            ("heavy", "sink_a"): 200_000,
            ("light", "sink_a"): 10_000,
            ("heavy", "sink_b"): 50_000,
        },
        host_in={"heavy": 1_000, "light": 1_000},
        host_out={"sink_a": 1_000, "sink_b": 1_000},
    )


def plan_for(graph):
    return design_interconnect(
        "qos", graph,
        DesignConfig(theta_s_per_byte=THETA, stream_overhead_s=0.0),
    )


class TestFlowLinkLoads:
    def test_loads_cover_planned_flows(self):
        plan = plan_for(star_graph())
        loads = flow_link_loads(plan)
        total_planned = sum(b for _, _, b in plan.noc.edges)
        # Every flow with a non-empty route contributes its bytes to at
        # least its first link.
        assert sum(
            sum(per.values()) for per in loads.values()
        ) >= total_planned - sum(
            b for p, c, b in plan.noc.edges
            if plan.noc.placement.positions[p]
            == plan.noc.placement.positions.get(f"mem:{c}")
        )

    def test_no_noc_empty(self):
        ks = {"a": KernelSpec("a", 1.0, 1.0), "b": KernelSpec("b", 1.0, 1.0)}
        g = CommGraph(kernels=ks, kk_edges={("a", "b"): 100})
        plan = plan_for(g)  # exclusive pair -> SM, no NoC
        assert plan.noc is None
        assert flow_link_loads(plan) == {}


class TestWeightQuantization:
    def test_heaviest_gets_max_weight(self):
        loads = {((0, 0), (1, 0)): {(0, 0): 1000, (0, 1): 100}}
        w = weights_from_loads(loads, max_weight=8)
        assert w[((0, 0), (1, 0))][(0, 0)] == 8
        assert w[((0, 0), (1, 0))][(0, 1)] == 1

    def test_weights_at_least_one(self):
        loads = {((0, 0), (1, 0)): {(0, 0): 10**9, (0, 1): 1}}
        w = weights_from_loads(loads, max_weight=4)
        assert min(w[((0, 0), (1, 0))].values()) >= 1

    def test_proportional_scaling(self):
        loads = {((0, 0), (1, 0)): {(0, 0): 800, (0, 1): 400}}
        w = weights_from_loads(loads, max_weight=8)
        assert w[((0, 0), (1, 0))] == {(0, 0): 8, (0, 1): 4}

    def test_invalid_max_weight(self):
        with pytest.raises(ConfigurationError):
            weights_from_loads({}, max_weight=0)


class TestApplyWeights:
    def test_configures_mesh_links(self):
        plan = plan_for(star_graph())
        p = plan.noc.placement
        mesh = NocMesh(Engine(), NocParams(width=p.width, height=p.height))
        configured = apply_qos_weights(mesh, plan)
        assert configured == len(flow_link_loads(plan))
        weighted = [
            l for l in mesh.links.values() if l.arbiter.weights
        ]
        assert len(weighted) == configured

    def test_bad_mesh_rejected(self):
        plan = plan_for(star_graph())
        tiny = NocMesh(Engine(), NocParams(width=1, height=1))
        if flow_link_loads(plan):
            with pytest.raises(ConfigurationError):
                apply_qos_weights(tiny, plan)


class TestQosSimulation:
    def test_qos_simulation_runs_and_is_sane(self):
        graph = star_graph()
        plan = plan_for(graph)
        plain = simulate_proposed(plan, 0.0, SystemParams())
        qos = simulate_proposed(plan, 0.0, SystemParams(noc_qos=True))
        # Same traffic delivered either way.
        assert plain.noc_bytes == qos.noc_bytes
        # QoS redistributes grants; makespan stays in the same ballpark
        # and never degrades catastrophically.
        assert qos.kernels_s <= plain.kernels_s * 1.2
        assert qos.kernels_s > 0
