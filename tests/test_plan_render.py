"""Tests for plan mesh rendering and the profile reuse-factor metric."""

from __future__ import annotations

import pytest

from repro.errors import ProfilingError
from repro.profiling import ProfileEdge


class TestMeshRendering:
    def test_jpeg_mesh_grid(self, jpeg_result):
        art = jpeg_result.plan.render_mesh()
        lines = art.splitlines()
        # 2x2 mesh: two router rows and one link row.
        assert len(lines) == 3
        assert lines[0].count("[") == 2
        assert "|" in lines[1]
        assert "M:dquantz" in art  # memory label prefix

    def test_no_noc_renders_empty(self, all_results):
        assert all_results["klt"].plan.render_mesh() == ""

    def test_long_names_truncated(self, jpeg_result):
        art = jpeg_result.plan.render_mesh()
        for line in art.splitlines():
            assert len(line) < 120

    def test_describe_includes_grid(self, jpeg_result):
        text = jpeg_result.plan.describe()
        assert "]--[" in text or "]  [" in text


class TestReuseFactor:
    def test_streaming_edge_is_one(self):
        e = ProfileEdge("a", "b", 100, 100)
        assert e.reuse_factor == pytest.approx(1.0)

    def test_reread_data_above_one(self):
        e = ProfileEdge("a", "b", 300, 100)
        assert e.reuse_factor == pytest.approx(3.0)

    def test_zero_umas(self):
        e = ProfileEdge("a", "b", 0, 0)
        assert e.reuse_factor == 0.0

    def test_klt_tracker_rereads_gradients(self, fitted_apps):
        """Lucas-Kanade samples gradient windows repeatedly, so the
        gradient edge's reuse factor must exceed pure streaming."""
        profile = fitted_apps["klt"].app.profile()
        edge = profile.edge("compute_gradients", "track_features")
        assert edge is not None
        assert edge.reuse_factor >= 1.0

    def test_jpeg_pipeline_is_streaming(self, fitted_apps):
        """The dequantizer reads each coefficient once."""
        profile = fitted_apps["jpeg"].app.profile()
        edge = profile.edge("dquantz_lum", "j_rev_dct")
        assert edge.reuse_factor == pytest.approx(1.0)
