"""Tests for the shared-local-memory solution (Alg. 1 lines 8-13)."""

from __future__ import annotations

from repro.core import CommGraph, KernelSpec, find_sharing_pairs
from repro.core.sharing import is_exclusive_pair, residual_graph


def mk(names, kk, host_in=None, host_out=None):
    ks = {n: KernelSpec(n, 10.0, 10.0) for n in names}
    return CommGraph(
        kernels=ks, kk_edges=kk, host_in=host_in or {}, host_out=host_out or {}
    )


class TestExclusivePair:
    def test_simple_exclusive_pair(self):
        g = mk(["p", "c"], {("p", "c"): 100})
        assert is_exclusive_pair(g, "p", "c")

    def test_producer_with_two_consumers_not_exclusive(self):
        g = mk(["p", "c", "d"], {("p", "c"): 100, ("p", "d"): 10})
        assert not is_exclusive_pair(g, "p", "c")

    def test_consumer_with_two_producers_not_exclusive(self):
        g = mk(["p", "q", "c"], {("p", "c"): 100, ("q", "c"): 10})
        assert not is_exclusive_pair(g, "p", "c")

    def test_missing_edge_not_exclusive(self):
        g = mk(["p", "c"], {})
        assert not is_exclusive_pair(g, "p", "c")

    def test_host_traffic_does_not_break_exclusivity(self):
        # The condition is about D^K only (the paper's jpeg pair: the
        # consumer also reads host data).
        g = mk(
            ["p", "c"],
            {("p", "c"): 100},
            host_in={"c": 500},
            host_out={"c": 500},
        )
        assert is_exclusive_pair(g, "p", "c")


class TestFindSharingPairs:
    def test_single_pair_found(self):
        g = mk(["p", "c"], {("p", "c"): 100})
        links = find_sharing_pairs(g)
        assert len(links) == 1
        assert (links[0].producer, links[0].consumer) == ("p", "c")
        assert links[0].bytes == 100

    def test_crossbar_iff_consumer_has_host_traffic(self):
        g1 = mk(["p", "c"], {("p", "c"): 100}, host_in={"c": 10})
        assert find_sharing_pairs(g1)[0].crossbar
        g2 = mk(["p", "c"], {("p", "c"): 100}, host_in={"p": 10})
        assert not find_sharing_pairs(g2)[0].crossbar

    def test_chain_pairs_only_once_per_kernel(self):
        # a->b->c is two exclusive edges but b cannot share twice;
        # the heaviest edge wins.
        g = mk(["a", "b", "c"], {("a", "b"): 50, ("b", "c"): 100})
        links = find_sharing_pairs(g)
        assert len(links) == 1
        assert (links[0].producer, links[0].consumer) == ("b", "c")

    def test_two_disjoint_pairs(self):
        g = mk(
            ["a", "b", "c", "d"],
            {("a", "b"): 10, ("c", "d"): 20},
        )
        links = find_sharing_pairs(g)
        assert {(l.producer, l.consumer) for l in links} == {("a", "b"), ("c", "d")}

    def test_fan_out_graph_has_no_pairs(self):
        g = mk(
            ["a", "b", "c"],
            {("a", "b"): 10, ("a", "c"): 10},
        )
        assert find_sharing_pairs(g) == ()

    def test_deterministic_order(self):
        g = mk(
            ["a", "b", "c", "d"],
            {("a", "b"): 10, ("c", "d"): 10},
        )
        l1 = find_sharing_pairs(g)
        l2 = find_sharing_pairs(g)
        assert l1 == l2

    def test_delta_c_formula(self):
        g = mk(["p", "c"], {("p", "c"): 100})
        link = find_sharing_pairs(g)[0]
        theta = 2e-9
        assert link.delta_c_seconds(theta) == 2 * 100 * theta


class TestResidualGraph:
    def test_satisfied_edges_removed(self):
        g = mk(
            ["a", "b", "c"],
            {("a", "b"): 100, ("b", "c"): 5, ("a", "c"): 5},
        )
        links = find_sharing_pairs(g)
        assert links == ()  # a sends to two consumers; b receives one but sends too

        g2 = mk(["p", "c", "x"], {("p", "c"): 100, ("x", "p"): 7})
        links = find_sharing_pairs(g2)
        assert len(links) == 1
        res = residual_graph(g2, links)
        assert res.edge_bytes("p", "c") == 0
        assert res.edge_bytes("x", "p") == 7

    def test_jpeg_shape(self):
        """The paper's jpeg structure: dq->idct shared, the rest on NoC."""
        g = mk(
            ["dc", "ac", "dq", "idct"],
            {("dc", "dq"): 10, ("ac", "dq"): 100, ("dq", "idct"): 120},
            host_in={"dc": 5, "ac": 20, "dq": 1, "idct": 1},
            host_out={"idct": 60},
        )
        links = find_sharing_pairs(g)
        assert len(links) == 1
        assert (links[0].producer, links[0].consumer) == ("dq", "idct")
        assert links[0].crossbar  # idct talks to the host
        res = residual_graph(g, links)
        assert set(res.kk_edges) == {("dc", "dq"), ("ac", "dq")}
