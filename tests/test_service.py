"""Tests for the service-layer building blocks: jobs, cache, metrics."""

from __future__ import annotations

import pytest

from repro.errors import CacheError, ConfigurationError
from repro.service import DesignJob, MetricsRegistry, ResultCache, percentile
from repro.sim.systems import SystemParams


class TestDesignJob:
    def test_fingerprint_is_stable(self):
        a = DesignJob("klt", scale=2, seed=7, simulate=False)
        b = DesignJob("klt", scale=2, seed=7, simulate=False)
        assert a.fingerprint() == b.fingerprint()
        assert len(a.fingerprint()) == 64  # sha256 hex

    def test_fingerprint_sees_every_input(self):
        base = DesignJob("klt", simulate=False)
        variants = [
            DesignJob("jpeg", simulate=False),
            DesignJob("klt", scale=2, simulate=False),
            DesignJob("klt", seed=1, simulate=False),
            DesignJob("klt", simulate=True),
            DesignJob("klt", simulate=False,
                      params=SystemParams(bus_width_bytes=4)),
            DesignJob("klt", simulate=False,
                      design={"enable_sharing": False}),
        ]
        prints = {j.fingerprint() for j in variants}
        assert base.fingerprint() not in prints
        assert len(prints) == len(variants)

    def test_design_mapping_normalized(self):
        a = DesignJob("klt", design={"enable_noc": False, "enable_sharing": False})
        b = DesignJob("klt", design={"enable_sharing": False, "enable_noc": False})
        assert a == b
        assert a.design_overrides == {
            "enable_noc": False, "enable_sharing": False,
        }

    def test_dict_roundtrip(self):
        job = DesignJob(
            "fluid", scale=3, seed=11,
            params=SystemParams(noc_qos=True, noc_transport="wormhole"),
            simulate=True, design={"enable_pipelining": False},
        )
        clone = DesignJob.from_dict(job.to_dict())
        assert clone == job
        assert clone.fingerprint() == job.fingerprint()

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigurationError):
            DesignJob("doom")

    def test_bad_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            DesignJob("klt", scale=0)

    def test_unknown_toggle_rejected(self):
        with pytest.raises(ConfigurationError):
            DesignJob("klt", design={"warp_drive": True})

    def test_calibrated_fields_not_overridable(self):
        with pytest.raises(ConfigurationError):
            DesignJob("klt", design={"theta_s_per_byte": 1e-9})


class TestResultCacheMemory:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("fp1") is None
        cache.put("fp1", {"speedup_app": 1.5})
        assert cache.get("fp1") == {"speedup_app": 1.5}
        assert cache.stats.misses == 1
        assert cache.stats.hits_memory == 1
        assert cache.stats.hit_ratio == 0.5

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.get("a")  # refresh a → b is now least-recent
        cache.put("c", {"v": 3})
        assert cache.stats.evictions == 1
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 1}
        assert cache.get("c") == {"v": 3}

    def test_bad_capacity_rejected(self):
        with pytest.raises(CacheError):
            ResultCache(capacity=0)


class TestResultCacheDisk:
    def test_survives_new_instance(self, tmp_path):
        ResultCache(cache_dir=tmp_path).put("fp", {"speedup_app": 2.25})
        fresh = ResultCache(cache_dir=tmp_path)
        assert fresh.get("fp") == {"speedup_app": 2.25}
        assert fresh.stats.hits_disk == 1

    def test_float_roundtrip_is_exact(self, tmp_path):
        value = {"speedup_kernels": 3.0000000000000004, "luts": 12345}
        ResultCache(cache_dir=tmp_path).put("fp", value)
        assert ResultCache(cache_dir=tmp_path).get("fp") == value

    def test_format_version_bump_invalidates(self, tmp_path, monkeypatch):
        ResultCache(cache_dir=tmp_path).put("fp", {"v": 1})
        monkeypatch.setattr("repro.io.FORMAT_VERSION", 99)
        fresh = ResultCache(cache_dir=tmp_path)
        assert fresh.get("fp") is None
        assert fresh.stats.invalidations == 1
        assert fresh.stats.misses == 1
        assert not (tmp_path / "fp.json").exists()

    def test_corrupt_entry_invalidated(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        (tmp_path / "fp.json").write_text("{not json")
        assert cache.get("fp") is None
        assert cache.stats.invalidations == 1
        assert not (tmp_path / "fp.json").exists()

    def test_fingerprint_mismatch_invalidated(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        cache.put("real", {"v": 1})
        (tmp_path / "real.json").rename(tmp_path / "other.json")
        fresh = ResultCache(cache_dir=tmp_path)
        assert fresh.get("other") is None
        assert fresh.stats.invalidations == 1


class TestMetrics:
    def test_percentiles_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 100) == 100.0
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 95) == 7.0

    def test_counters_and_timers(self):
        m = MetricsRegistry()
        m.incr("jobs_submitted", 3)
        m.incr("jobs_submitted")
        m.observe("job_latency", 0.1)
        m.observe("job_latency", 0.3)
        snap = m.snapshot()
        assert snap["counters"]["jobs_submitted"] == 4
        stats = snap["timers"]["job_latency"]
        assert stats["count"] == 2
        assert stats["mean_s"] == pytest.approx(0.2)

    def test_render_includes_extras(self):
        m = MetricsRegistry()
        m.incr("jobs_completed", 2)
        text = m.render((("cache_hit_ratio", 1.0),))
        assert "jobs_completed" in text
        assert "cache_hit_ratio" in text
        assert "1.0000" in text


class TestCacheDeterminism:
    """Same seed + SystemParams twice must be bit-for-bit reproducible."""

    def test_repeat_submission_is_byte_identical_and_cached(self):
        from repro.io import canonical_json
        from repro.service import DesignService

        params = SystemParams(bus_width_bytes=4, dma_setup_cycles=60)
        service = DesignService()
        make = lambda: DesignJob("klt", scale=2, seed=11, simulate=True,
                                 params=params)

        first = service.submit(make())
        second = service.submit(make())

        assert not first.cached
        assert second.cached
        assert canonical_json(first.summary).encode() == \
            canonical_json(second.summary).encode()
        cache = service.stats()["cache"]
        assert cache["hits_memory"] + cache["hits_disk"] == 1
        assert cache["misses"] >= 1

    def test_two_services_same_disk_cache_agree(self, tmp_path):
        from repro.io import canonical_json
        from repro.service import DesignService

        job = DesignJob("canny", seed=3, simulate=True,
                        params=SystemParams(noc_link_width_bytes=2))
        summary_a = DesignService(cache_dir=tmp_path).submit(job).summary
        result_b = DesignService(cache_dir=tmp_path).submit(job)
        assert result_b.cached
        assert canonical_json(summary_a) == canonical_json(result_b.summary)
