"""Tests for the bus, memories, crossbar and DMA models."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.sim import Bram, Crossbar, PlbBus, Sdram
from repro.sim.dma import DmaEngine
from repro.sim.engine import Engine
from repro.sim.host import HostProcessor


class TestBus:
    def test_transfer_cycles_formula(self):
        eng = Engine()
        bus = PlbBus(eng, width_bytes=8, arbitration_cycles=3, address_cycles=2)
        assert bus.transfer_cycles(0) == 0
        assert bus.transfer_cycles(1) == 3 + 2 + 1
        assert bus.transfer_cycles(64) == 3 + 2 + 8
        assert bus.transfer_cycles(65) == 3 + 2 + 9

    def test_transfer_advances_time(self):
        eng = Engine()
        bus = PlbBus(eng)

        def proc():
            yield from bus.transfer(1024, requester="t")

        eng.process(proc())
        t = eng.run()
        assert t == pytest.approx(bus.cycles(bus.transfer_cycles(1024)))
        assert bus.bytes_moved == 1024

    def test_contention_serializes(self):
        eng = Engine()
        bus = PlbBus(eng)
        ends = []

        def proc(tag):
            yield from bus.transfer(1024, requester=tag)
            ends.append(eng.now)

        eng.process(proc("a"))
        eng.process(proc("b"))
        eng.run()
        single = bus.cycles(bus.transfer_cycles(1024))
        assert ends[0] == pytest.approx(single)
        assert ends[1] == pytest.approx(2 * single)

    def test_burst_splitting_interleaves(self):
        """A long transfer cannot starve a short one for its full length."""
        eng = Engine()
        bus = PlbBus(eng, typical_burst_bytes=256)
        ends = {}

        def big():
            yield from bus.transfer(4096, requester="big")
            ends["big"] = eng.now

        def small():
            yield 1e-9  # arrive just after the big one grabs the bus
            yield from bus.transfer(64, requester="small")
            ends["small"] = eng.now

        eng.process(big())
        eng.process(small())
        eng.run()
        assert ends["small"] < ends["big"]

    def test_theta_amortizes_overhead(self):
        eng = Engine()
        bus = PlbBus(eng, width_bytes=8, typical_burst_bytes=1024)
        pure = bus.cycles(1) / 8  # one cycle moves 8 bytes
        assert bus.theta_s_per_byte > pure
        assert bus.theta_s_per_byte < 2 * pure

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            PlbBus(Engine(), width_bytes=0)
        with pytest.raises(ConfigurationError):
            PlbBus(Engine(), typical_burst_bytes=0)

    def test_negative_transfer_rejected(self):
        bus = PlbBus(Engine())
        with pytest.raises(ConfigurationError):
            bus.transfer_cycles(-1)


class TestBram:
    def test_access_cycles(self):
        mem = Bram(Engine(), "m", size_bytes=4096, width_bytes=4)
        assert mem.access_cycles(16) == 4
        assert mem.access_cycles(17) == 5

    def test_two_ports_parallel_third_waits(self):
        eng = Engine()
        mem = Bram(eng, "m", size_bytes=4096)
        ends = []

        def user(tag):
            yield from mem.access(400, accessor=tag)
            ends.append(eng.now)

        for t in "abc":
            eng.process(user(t))
        eng.run()
        one = mem.cycles(mem.access_cycles(400))
        assert ends[0] == pytest.approx(one)
        assert ends[1] == pytest.approx(one)
        assert ends[2] == pytest.approx(2 * one)

    def test_oversized_access_rejected(self):
        eng = Engine()
        mem = Bram(eng, "m", size_bytes=64)

        def proc():
            yield from mem.access(100)

        eng.process(proc())
        with pytest.raises(ConfigurationError):
            eng.run()

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            Bram(Engine(), "m", size_bytes=0)


class TestSdram:
    def test_latency_plus_stream(self):
        eng = Engine()
        ram = Sdram(eng, latency_cycles=20, width_bytes=8)

        def proc():
            yield from ram.access(64, accessor="t")

        eng.process(proc())
        t = eng.run()
        assert t == pytest.approx(ram.cycles(20 + 8))
        assert ram.bytes_accessed == 64


class TestCrossbar:
    def _setup(self):
        eng = Engine()
        a = Bram(eng, "mem_a", 4096)
        b = Bram(eng, "mem_b", 4096)
        xb = Crossbar(eng, "xb", a, b)
        return eng, a, b, xb

    def test_routes_by_name(self):
        _, a, b, xb = self._setup()
        assert xb.route("mem_a") is a
        assert xb.route("mem_b") is b
        with pytest.raises(ConfigurationError):
            xb.route("zzz")

    def test_zero_overhead_switching(self):
        """Crossbar access time equals direct BRAM access time."""
        eng, a, _, xb = self._setup()

        def proc():
            yield from xb.access("mem_a", 256, accessor="host")

        eng.process(proc())
        t = eng.run()
        assert t == pytest.approx(a.cycles(a.access_cycles(256)))
        assert xb.switched_accesses == 1

    def test_same_memory_rejected(self):
        eng = Engine()
        m = Bram(eng, "m", 64)
        with pytest.raises(ConfigurationError):
            Crossbar(eng, "xb", m, m)


class TestDmaAndHost:
    def test_dma_adds_setup_latency(self):
        eng = Engine()
        bus = PlbBus(eng)
        dma = DmaEngine(eng, bus, setup_cycles=40)

        def proc():
            yield from dma.transfer(512, requester="t")

        eng.process(proc())
        t = eng.run()
        expected = dma.cycles(40) + bus.cycles(bus.transfer_cycles(512))
        assert t == pytest.approx(expected)
        assert dma.transfers == 1

    def test_dma_zero_bytes_noop(self):
        eng = Engine()
        dma = DmaEngine(eng, PlbBus(eng))

        def proc():
            yield from dma.transfer(0)
            yield 0.0

        eng.process(proc())
        assert eng.run() == 0.0
        assert dma.transfers == 0

    def test_host_software_delay(self):
        eng = Engine()
        host = HostProcessor(eng)

        def proc():
            yield from host.run_software(0.25)

        eng.process(proc())
        assert eng.run() == pytest.approx(0.25)
        assert host.software_seconds == pytest.approx(0.25)

    def test_host_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            list(HostProcessor(Engine()).run_software(-1.0))
