"""Tests for the parallel job runner: retry, timeout, degradation."""

from __future__ import annotations

import time

import pytest

from repro.errors import JobExecutionError, JobTimeoutError
from repro.service import DesignJob, ExecutorConfig, JobRunner

FAST = ExecutorConfig(retries=2, backoff_s=0.0)


def _job(app="klt"):
    return DesignJob(app, simulate=False)


def _sleepy_runner(job):  # module-level: picklable, so the pool is used
    time.sleep(5.0)
    return {"solution": "SM"}


class TestSerialRetry:
    def test_flaky_job_retried_until_success(self):
        calls = []

        def flaky(job):
            calls.append(job.app)
            if len(calls) < 3:
                raise RuntimeError("transient")
            return {"solution": "SM"}

        runner = JobRunner(FAST, runner=flaky)
        outcome = runner.run([_job()])[0]
        assert outcome.attempts == 3
        assert outcome.summary == {"solution": "SM"}
        assert len(calls) == 3

    def test_exhausted_retries_raise(self):
        def always_fails(job):
            raise RuntimeError("boom")

        runner = JobRunner(FAST, runner=always_fails)
        with pytest.raises(JobExecutionError) as exc_info:
            runner.run([_job()])
        err = exc_info.value
        assert err.attempts == 3
        assert err.fingerprint == _job().fingerprint()
        assert "boom" in err.last_error

    def test_backoff_schedule(self):
        cfg = ExecutorConfig(backoff_s=0.05, backoff_factor=2.0)
        assert cfg.backoff_for(1) == pytest.approx(0.05)
        assert cfg.backoff_for(3) == pytest.approx(0.2)


class TestDegradation:
    def test_unpicklable_runner_forces_serial(self):
        closure_state = []

        def runner(job):
            closure_state.append(job.app)
            return {"solution": "SM"}

        jr = JobRunner(ExecutorConfig(jobs=4, retries=0), runner=runner)
        outcomes = jr.run([_job(), _job("jpeg")])
        assert jr.last_mode == "serial"
        assert [o.summary for o in outcomes] == [{"solution": "SM"}] * 2

    def test_force_serial_flag(self):
        jr = JobRunner(
            ExecutorConfig(jobs=4, force_serial=True),
            runner=lambda job: {"solution": "SM"},
        )
        jr.run([_job()])
        assert jr.last_mode == "serial"

    def test_serial_keeps_full_result(self):
        outcome = JobRunner(ExecutorConfig()).run([_job()])[0]
        assert outcome.result is not None
        assert outcome.result.name == "klt"
        assert outcome.summary["speedup_kernels"] > 1.0

    def test_empty_batch(self):
        assert JobRunner(ExecutorConfig()).run([]) == []


class TestPool:
    def test_pool_timeout_raises(self):
        jr = JobRunner(
            ExecutorConfig(jobs=2, timeout_s=0.2, retries=0),
            runner=_sleepy_runner,
        )
        with pytest.raises(JobTimeoutError) as exc_info:
            jr.run([_job()])
        assert jr.last_mode == "parallel"
        assert "timed out" in exc_info.value.last_error

    def test_pool_preserves_order(self):
        jobs = [_job("klt"), _job("jpeg"), _job("canny")]
        jr = JobRunner(ExecutorConfig(jobs=3))
        outcomes = jr.run(jobs)
        assert jr.last_mode == "parallel"
        assert [o.job.app for o in outcomes] == ["klt", "jpeg", "canny"]
        # Pool transports summaries only; the rich object stays behind.
        assert all(o.result is None for o in outcomes)
