"""End-to-end wiring of the static graph source.

Plan identity is the headline guarantee: wherever the static and traced
graphs agree (all of canny, KLT, and fluid), Algorithm 1 must produce a
byte-identical plan from either source.
"""

import json

import pytest

from repro.apps import fit_application, get_application
from repro.cli import main
from repro.core.designer import DesignConfig, design_interconnect
from repro.errors import ConfigurationError
from repro.flow import GRAPH_SOURCES, result_summary, run_experiment
from repro.io import canonical_json, graph_to_dict, plan_to_dict
from repro.service.executor import execute_job
from repro.service.jobs import DesignJob
from repro.server.protocol import parse_design_request
from repro.sim.systems import SystemParams
from repro.static.fit import fit_static

DETERMINISTIC_APPS = ("canny", "klt", "fluid")


# -- plan identity --------------------------------------------------------
@pytest.mark.parametrize("name", DETERMINISTIC_APPS)
def test_static_and_traced_fits_are_byte_identical(name):
    theta = SystemParams().theta_s_per_byte()
    traced = fit_application(get_application(name), theta)
    static = fit_static(get_application(name), theta)
    assert canonical_json(graph_to_dict(static.graph)) == canonical_json(
        graph_to_dict(traced.graph)
    )
    assert repr(static.host_other_s) == repr(traced.host_other_s)
    assert repr(static.stream_overhead_s) == repr(traced.stream_overhead_s)


@pytest.mark.parametrize("name", DETERMINISTIC_APPS)
def test_static_and_traced_plans_are_byte_identical(name):
    theta = SystemParams().theta_s_per_byte()
    plans = []
    for fitted in (
        fit_application(get_application(name), theta),
        fit_static(get_application(name), theta),
    ):
        config = DesignConfig(
            theta_s_per_byte=theta,
            stream_overhead_s=fitted.stream_overhead_s,
        )
        plans.append(design_interconnect(name, fitted.graph, config))
    assert canonical_json(plan_to_dict(plans[0])) == canonical_json(
        plan_to_dict(plans[1])
    )


def test_jpeg_static_fit_uses_nominal_stream_extents():
    # JPEG's bitstream edges are data-dependent: the static fit uses
    # their nominals, so its graph legitimately differs from the traced
    # one — but only on those two host_in entries.
    theta = SystemParams().theta_s_per_byte()
    traced = fit_application(get_application("jpeg"), theta)
    static = fit_static(get_application("jpeg"), theta)
    assert static.graph.kk_edges == traced.graph.kk_edges
    assert static.graph.host_out == traced.graph.host_out
    differing = {
        k
        for k in traced.graph.host_in
        if static.graph.host_in[k] != traced.graph.host_in[k]
    }
    assert differing == {"huff_dc_dec", "huff_ac_dec"}


# -- run_experiment -------------------------------------------------------
def test_run_experiment_rejects_unknown_graph_source():
    assert GRAPH_SOURCES == ("trace", "static")
    with pytest.raises(ConfigurationError):
        run_experiment("canny", simulate=False, graph_source="psychic")


def test_run_experiment_static_summary_matches_traced():
    traced = run_experiment("canny", simulate=False)
    static = run_experiment("canny", simulate=False, graph_source="static")
    assert result_summary(static) == result_summary(traced)


# -- service + server wiring ----------------------------------------------
def test_design_job_graph_source_is_fingerprinted():
    a = DesignJob(app="canny", simulate=False)
    b = DesignJob(app="canny", simulate=False, graph_source="static")
    assert a.graph_source == "trace"
    assert a.fingerprint() != b.fingerprint()
    assert DesignJob.from_dict(b.to_dict()) == b
    # Documents predating the field deserialize as traced jobs.
    legacy = a.to_dict()
    del legacy["graph_source"]
    assert DesignJob.from_dict(legacy).graph_source == "trace"


def test_design_job_rejects_unknown_graph_source():
    with pytest.raises(ConfigurationError):
        DesignJob(app="canny", graph_source="psychic")


def test_execute_job_routes_graph_source():
    job = DesignJob(app="canny", simulate=False, graph_source="static")
    _, summary = execute_job(job)
    _, traced_summary = execute_job(DesignJob(app="canny", simulate=False))
    assert summary == traced_summary


def test_parse_design_request_accepts_graph_source():
    job = parse_design_request(
        {"app": "canny", "simulate": False, "graph_source": "static"}
    )
    assert job.graph_source == "static"
    assert parse_design_request({"app": "canny"}).graph_source == "trace"


# -- CLI ------------------------------------------------------------------
def test_cli_static_prose_and_json(capsys):
    assert main(["static", "canny"]) == 0
    out = capsys.readouterr().out
    assert "canny: 4 kernels" in out
    assert main(["static", "canny", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["kind"] == "static-graph" and doc["app"] == "canny"
    assert main(["static", "--all", "--json"]) == 0
    docs = json.loads(capsys.readouterr().out)
    assert [d["app"] for d in docs] == ["canny", "jpeg", "klt", "fluid"]


def test_cli_static_requires_exactly_one_target(capsys):
    assert main(["static"]) == 1
    assert main(["static", "canny", "--all"]) == 1


def test_cli_static_check_writes_diff_report(tmp_path, capsys):
    out = tmp_path / "static-diff.json"
    assert main(["static", "--all", "--check", "--diff-out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "canny: ok" in text and "jpeg: ok" in text
    doc = json.loads(out.read_text())
    assert doc["kind"] == "static-diff" and doc["ok"] is True
    assert set(doc["apps"]) == set(("canny", "jpeg", "klt", "fluid"))


def test_cli_static_check_json_single_app(capsys):
    assert main(["static", "klt", "--check", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["kind"] == "static-diff"
    assert list(doc["apps"]) == ["klt"]
