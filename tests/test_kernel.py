"""Tests for the KernelSpec model (Eq. 1)."""

from __future__ import annotations

import pytest

from repro.core import KernelSpec
from repro.errors import ConfigurationError
from repro.hw.resources import ResourceCost


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            KernelSpec("", 1.0, 1.0)

    def test_negative_timing_rejected(self):
        with pytest.raises(ConfigurationError):
            KernelSpec("k", -1.0, 1.0)
        with pytest.raises(ConfigurationError):
            KernelSpec("k", 1.0, -1.0)

    def test_negative_memory_rejected(self):
        with pytest.raises(ConfigurationError):
            KernelSpec("k", 1.0, 1.0, local_memory_bytes=-5)


class TestTiming:
    def test_tau_seconds_uses_kernel_clock(self):
        k = KernelSpec("k", tau_cycles=100.0, sw_cycles=0.0)
        assert k.tau_seconds == pytest.approx(1e-6)  # 100 @ 100 MHz

    def test_sw_seconds_uses_host_clock(self):
        k = KernelSpec("k", tau_cycles=0.0, sw_cycles=400.0)
        assert k.sw_seconds == pytest.approx(1e-6)  # 400 @ 400 MHz

    def test_hw_speedup(self):
        # 4000 host cycles (10 us) vs 100 kernel cycles (1 us) = 10x.
        k = KernelSpec("k", tau_cycles=100.0, sw_cycles=4000.0)
        assert k.hw_speedup == pytest.approx(10.0)

    def test_hw_speedup_zero_tau_rejected(self):
        k = KernelSpec("k", tau_cycles=0.0, sw_cycles=100.0)
        with pytest.raises(ConfigurationError):
            _ = k.hw_speedup


class TestTransforms:
    def test_halved_copies(self):
        k = KernelSpec(
            "k", 1000.0, 8000.0,
            parallelizable=True, resources=ResourceCost(500, 600),
        )
        h = k.halved("#0")
        assert h.name == "k#0"
        assert h.tau_cycles == 500.0
        assert h.sw_cycles == 4000.0
        assert h.resources == ResourceCost(500, 600)  # full core each
        assert h.parallelizable

    def test_with_resources(self):
        k = KernelSpec("k", 1.0, 1.0)
        k2 = k.with_resources(ResourceCost(7, 8))
        assert k2.resources == ResourceCost(7, 8)
        assert k.resources == ResourceCost(0, 0)

    def test_frozen(self):
        k = KernelSpec("k", 1.0, 1.0)
        with pytest.raises(AttributeError):
            k.tau_cycles = 2.0
