"""Property tests for the nearest-rank percentile (satellite fix).

The original implementation computed the rank as
``ceil(q / 100.0 * n)`` in binary floating point; ``q/100`` is not
representable for most ``q``, and the upward error pushed the ceiling
one rank too high exactly at rank boundaries (``q=55, n=100`` returned
the 56th value). The reference here does the same nearest-rank math by
*linear search in exact rational arithmetic* — the smallest rank ``r``
with ``r ≥ q·n/100`` — and the tests assert the production function
matches it on random inputs and at the documented edge quantiles.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.service.metrics import MetricsRegistry, percentile

#: The satellite's required probe quantiles, as percents.
EDGE_QS = (0.0, 0.5, 50.0, 99.0, 1.0, 100.0)


def reference_percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    threshold = Fraction(q) * n / 100
    for rank in range(1, n + 1):
        if rank >= threshold:
            return ordered[rank - 1]
    return ordered[-1]


values_st = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False), min_size=1,
    max_size=300,
)


@settings(max_examples=300, deadline=None)
@given(values=values_st, q=st.floats(min_value=0, max_value=100))
def test_matches_reference_on_random_inputs(values, q):
    assert percentile(values, q) == reference_percentile(values, q)


@settings(max_examples=200, deadline=None)
@given(values=values_st, q=st.sampled_from(EDGE_QS))
def test_matches_reference_at_edge_quantiles(values, q):
    assert percentile(values, q) == reference_percentile(values, q)


@settings(max_examples=200, deadline=None)
@given(values=values_st, q=st.floats(min_value=0, max_value=100))
def test_result_is_an_observed_value(values, q):
    assert percentile(values, q) in values


@settings(max_examples=100, deadline=None)
@given(
    values=values_st,
    qa=st.floats(min_value=0, max_value=100),
    qb=st.floats(min_value=0, max_value=100),
)
def test_monotone_in_q(values, qa, qb):
    lo, hi = sorted((qa, qb))
    assert percentile(values, lo) <= percentile(values, hi)


@settings(max_examples=100, deadline=None)
@given(values=values_st)
def test_extremes_are_min_and_max(values):
    assert percentile(values, 0) == min(values)
    assert percentile(values, 100) == max(values)


def test_boundary_ranks_are_exact():
    # q=55 over 1..100 must return 55 (the old float path returned 56);
    # the same off-by-one existed at every q whose q/100 rounds up.
    values = list(range(1, 101))
    for q in (7, 14, 28, 55, 56):
        assert percentile(values, q) == q


def test_empty_input_returns_zero_not_nan():
    assert percentile([], 50) == 0.0


@pytest.mark.parametrize("q", (-0.001, 100.001, 1e9))
def test_out_of_range_q_raises(q):
    with pytest.raises(ConfigurationError):
        percentile([1.0], q)


def test_timer_stats_use_fixed_percentiles():
    registry = MetricsRegistry()
    for v in range(1, 101):
        registry.observe("t", float(v))
    stats = registry.timer_stats("t")
    assert stats["p50_s"] == 50.0
    assert stats["p95_s"] == 95.0
    assert stats["p99_s"] == 99.0
