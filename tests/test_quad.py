"""Tests for the QUAD analyzer and communication profiles."""

from __future__ import annotations

import pytest

from repro.errors import ProfilingError
from repro.profiling import (
    CommunicationProfile,
    FunctionStats,
    ProfileEdge,
    QuadAnalyzer,
    Tracer,
)


def make_profile():
    edges = [
        ProfileEdge("a", "b", 100, 80),
        ProfileEdge("b", "c", 50, 50),
        ProfileEdge("a", "c", 10, 10),
        ProfileEdge("__entry__", "a", 30, 30),
    ]
    fns = [
        FunctionStats("a", 1, 30, 110, 5.0),
        FunctionStats("b", 1, 100, 50, 3.0),
        FunctionStats("c", 2, 60, 0, 2.0),
    ]
    return CommunicationProfile(edges, fns)


class TestProfileEdge:
    def test_umas_cannot_exceed_bytes(self):
        with pytest.raises(ProfilingError):
            ProfileEdge("a", "b", 10, 11)

    def test_negative_rejected(self):
        with pytest.raises(ProfilingError):
            ProfileEdge("a", "b", -1, 0)


class TestCommunicationProfile:
    def test_edges_sorted_heaviest_first(self):
        p = make_profile()
        assert [e.bytes for e in p.edges] == [100, 50, 30, 10]

    def test_duplicate_edges_rejected(self):
        with pytest.raises(ProfilingError):
            CommunicationProfile(
                [ProfileEdge("a", "b", 1, 1), ProfileEdge("a", "b", 2, 2)], []
            )

    def test_bytes_between(self):
        p = make_profile()
        assert p.bytes_between("a", "b") == 100
        assert p.bytes_between("b", "a") == 0

    def test_producers_and_consumers(self):
        p = make_profile()
        assert p.producers_of("c") == ("b", "a")
        assert p.consumers_of("a") == ("b", "c")

    def test_total_bytes(self):
        assert make_profile().total_bytes() == 190

    def test_function_lookup(self):
        p = make_profile()
        assert p.function("a").work == 5.0
        with pytest.raises(ProfilingError):
            p.function("zzz")

    def test_collapse_merges_and_drops_self_edges(self):
        p = make_profile()
        g = p.collapse({"a": "grp", "b": "grp"})
        # a->b became internal; a->c and b->c merged into grp->c.
        assert g.bytes_between("grp", "c") == 60
        assert g.bytes_between("grp", "grp") == 0
        assert g.function("grp").work == 8.0

    def test_restricted_to_folds_outside_into_host(self):
        p = make_profile()
        g = p.restricted_to(["b", "c"], "host")
        assert g.bytes_between("host", "b") == 100
        assert g.bytes_between("b", "c") == 50
        assert g.entry_name == "host"

    def test_restricted_keeps_entry_separate_when_included(self):
        p = make_profile()
        g = p.restricted_to(["__entry__", "a"], "host")
        assert g.bytes_between("__entry__", "a") == 30


class TestQuadAnalyzer:
    def test_snapshot_from_tracer(self):
        t = Tracer()
        with t.context("p"):
            t.record_store(0, 64)
            t.add_work(9.0)
        with t.context("c"):
            t.record_load(0, 64)
            t.record_load(0, 64)
        profile = QuadAnalyzer(t).profile()
        e = profile.edge("p", "c")
        assert e is not None
        assert e.bytes == 128
        assert e.umas == 64
        assert profile.function("p").work == 9.0
        assert profile.function("c").bytes_loaded == 128

    def test_snapshot_is_immutable_view(self):
        t = Tracer()
        with t.context("p"):
            t.record_store(0, 8)
        with t.context("c"):
            t.record_load(0, 8)
        profile = QuadAnalyzer(t).profile()
        with t.context("c"):
            t.record_load(0, 8)
        # Original snapshot is unchanged by later tracing.
        assert profile.edge("p", "c").bytes == 8
