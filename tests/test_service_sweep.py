"""End-to-end service tests: coalescing, cached sweeps, CLI, parity."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.service import DesignJob, DesignService
from repro.sweep import SweepGrid, run_sweep, to_csv


def _grid(**overrides):
    kwargs = dict(
        apps=["klt"],
        param_grid={"bus_width_bytes": [4, 8]},
        simulate=False,
    )
    kwargs.update(overrides)
    return SweepGrid(**kwargs)


class TestSubmitMany:
    def test_duplicate_jobs_coalesced(self):
        calls = []

        def runner(job):
            calls.append(job.fingerprint())
            return {"solution": "SM"}

        svc = DesignService(runner=runner)
        job = DesignJob("klt", simulate=False)
        other = DesignJob("jpeg", simulate=False)
        results = svc.submit_many([job, job, other, job])
        assert len(calls) == 2  # one per distinct fingerprint
        assert [r.coalesced for r in results] == [False, True, False, True]
        assert results[1].summary == results[0].summary
        assert svc.metrics.counter("jobs_coalesced") == 2
        assert svc.metrics.counter("jobs_completed") == 2

    def test_submit_twice_hits_cache(self):
        svc = DesignService()
        job = DesignJob("klt", simulate=False)
        first = svc.submit(job)
        second = svc.submit(job)
        assert not first.cached
        assert second.cached
        assert second.summary == first.summary
        assert svc.cache.stats.hit_ratio == 0.5

    def test_failure_counted_and_raised(self):
        from repro.errors import JobExecutionError
        from repro.service import ExecutorConfig

        def always_fails(job):
            raise RuntimeError("boom")

        svc = DesignService(
            executor_config=ExecutorConfig(retries=0), runner=always_fails
        )
        with pytest.raises(JobExecutionError):
            svc.submit(DesignJob("klt", simulate=False))
        assert svc.metrics.counter("jobs_failed") == 1


class TestSweepParity:
    def test_parallel_csv_matches_serial(self):
        grid = _grid(apps=["klt", "canny"])
        serial = to_csv(run_sweep(grid, jobs=1))
        parallel = to_csv(run_sweep(grid, jobs=2))
        assert parallel == serial

    def test_cached_rerun_matches_and_hits(self, tmp_path):
        grid = _grid()
        svc1 = DesignService(cache_dir=tmp_path)
        text1 = to_csv(run_sweep(grid, service=svc1))
        assert svc1.cache.stats.hit_ratio == 0.0

        svc2 = DesignService(cache_dir=tmp_path)
        text2 = to_csv(run_sweep(grid, service=svc2))
        assert text2 == text1
        assert svc2.cache.stats.hit_ratio == 1.0
        assert svc2.metrics.counter("jobs_completed") == 0

    def test_default_path_keeps_full_results(self):
        points = run_sweep(_grid())
        assert all(p.result is not None for p in points)

    def test_record_is_self_describing(self):
        rec = run_sweep(_grid())[0].record()
        assert rec["seed"] == 2014
        # every SystemParams field is present, not just the varied one
        for field in ("bus_width_bytes", "bus_burst_bytes",
                      "dma_setup_cycles", "noc_qos", "noc_transport",
                      "noc_hop_latency_cycles"):
            assert field in rec

    def test_stats_render_mentions_cache(self):
        svc = DesignService()
        run_sweep(_grid(), service=svc)
        text = svc.render_stats()
        assert "cache_hit_ratio" in text
        assert "jobs_completed" in text
        assert svc.stats()["cache"]["misses"] == 2


class TestCliSweep:
    ARGS = ["sweep", "--apps", "klt", "--param", "bus_width_bytes=4,8"]

    def test_csv_on_stdout(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert len(lines) == 3  # header + 2 points
        assert lines[0].startswith("app,scale,seed,")

    def test_stats_go_to_stderr(self, capsys):
        assert main(self.ARGS + ["--stats"]) == 0
        captured = capsys.readouterr()
        assert "cache_hit_ratio" not in captured.out
        assert "cache_hit_ratio" in captured.err

    def test_output_file(self, tmp_path, capsys):
        path = tmp_path / "sweep.csv"
        assert main(self.ARGS + ["--jobs", "2", "--output", str(path)]) == 0
        assert "wrote 2 sweep points" in capsys.readouterr().out
        assert path.read_text().count("\n") == 3

    def test_bool_param_parsing(self, capsys):
        assert main(["sweep", "--apps", "klt",
                     "--param", "noc_qos=false,true"]) == 0
        out = capsys.readouterr().out
        assert ",False," in out and ",True," in out

    def test_bad_param_spec_errors(self, capsys):
        assert main(["sweep", "--apps", "klt", "--param", "nonsense"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_param_errors(self, capsys):
        assert main(["sweep", "--apps", "klt",
                     "--param", "warp_factor=9"]) == 1
        assert "error:" in capsys.readouterr().err
