"""Tests for the design-space exploration extension."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core import CommGraph, DesignConfig, KernelSpec
from repro.explore import (
    DesignPoint,
    enumerate_design_points,
    graph_metrics,
    pareto_front,
    predict_solution,
    to_networkx,
)

THETA = 1.3e-9


def chain(n=3, kk=10_000):
    ks = {f"k{i}": KernelSpec(f"k{i}", 10_000.0, 100_000.0) for i in range(n)}
    edges = {(f"k{i}", f"k{i+1}"): kk for i in range(n - 1)}
    return CommGraph(
        kernels=ks, kk_edges=edges,
        host_in={"k0": 5_000}, host_out={f"k{n-1}": 5_000},
    )


def all_to_all(n=3, kk=10_000):
    ks = {f"k{i}": KernelSpec(f"k{i}", 10_000.0, 100_000.0) for i in range(n)}
    edges = {
        (f"k{i}", f"k{j}"): kk
        for i in range(n) for j in range(n) if i != j
    }
    return CommGraph(kernels=ks, kk_edges=edges, host_in={"k0": 1_000})


class TestToNetworkx:
    def test_nodes_and_edges(self):
        g = to_networkx(chain(3))
        assert set(g.nodes) == {"k0", "k1", "k2"}
        assert g["k0"]["k1"]["bytes"] == 10_000
        assert g.nodes["k0"]["d_h_in"] == 5_000

    def test_digraph_directionality(self):
        g = to_networkx(chain(2))
        assert g.has_edge("k0", "k1")
        assert not g.has_edge("k1", "k0")


class TestMetrics:
    def test_chain_metrics(self):
        m = graph_metrics(chain(4))
        assert m.n_kernels == 4
        assert m.n_edges == 3
        assert not m.cyclic
        assert m.components == 1
        assert m.exclusive_pairs >= 1

    def test_all_to_all_metrics(self):
        m = graph_metrics(all_to_all(3))
        assert m.density == pytest.approx(1.0)
        assert m.cyclic
        assert m.exclusive_pairs == 0

    def test_kk_traffic_share(self):
        g = chain(2, kk=10_000)  # kk counted twice = 20k; host = 10k
        m = graph_metrics(g)
        assert m.kk_traffic_share == pytest.approx(20_000 / 30_000)

    def test_disconnected_components(self):
        ks = {n: KernelSpec(n, 1.0, 1.0) for n in ("a", "b", "c", "d")}
        g = CommGraph(
            kernels=ks, kk_edges={("a", "b"): 5, ("c", "d"): 5},
        )
        assert graph_metrics(g).components == 2

    def test_isolated_graph(self):
        ks = {"a": KernelSpec("a", 1.0, 1.0)}
        g = CommGraph(kernels=ks, host_in={"a": 10})
        m = graph_metrics(g)
        assert m.kk_traffic_share == 0.0
        assert m.n_edges == 0


class TestPredictSolution:
    def test_pair_predicts_sm(self):
        assert predict_solution(chain(2)) == "SM"

    def test_all_to_all_predicts_noc(self):
        assert predict_solution(all_to_all(3)) == "NoC"

    def test_chain_predicts_hybrid(self):
        # A 4-chain shares one pair and keeps residual edges.
        assert predict_solution(chain(4)) == "NoC, SM"

    def test_isolated_predicts_bus(self):
        ks = {"a": KernelSpec("a", 1.0, 1.0)}
        g = CommGraph(kernels=ks, host_in={"a": 10})
        assert predict_solution(g) == "Bus"

    def test_predictor_matches_designer_on_paper_apps(self, fitted_apps):
        """The cheap predictor agrees with Algorithm 1's NoC/SM split."""
        from repro.core.designer import design_interconnect

        for name, f in fitted_apps.items():
            predicted = predict_solution(f.graph)
            config = DesignConfig(
                theta_s_per_byte=f.theta_s_per_byte,
                stream_overhead_s=f.stream_overhead_s,
                enable_duplication=False,  # predictor ignores P
                enable_pipelining=False,
            )
            plan = design_interconnect(name, f.graph, config)
            assert plan.solution_label() == predicted, name


class TestPareto:
    def mk_config(self):
        return DesignConfig(theta_s_per_byte=THETA, stream_overhead_s=0.0)

    def test_enumerates_all_variants(self):
        points = enumerate_design_points(
            "t", chain(4), self.mk_config(), host_other_s=0.0
        )
        labels = {p.label for p in points}
        assert "bus-only" in labels
        assert "hybrid-full" in labels
        assert len(points) == 6

    def test_bus_only_cheapest_hybrid_fastest(self):
        points = enumerate_design_points(
            "t", chain(4), self.mk_config(), host_other_s=0.0
        )
        by_label = {p.label: p for p in points}
        assert by_label["bus-only"].luts == min(p.luts for p in points)
        assert by_label["hybrid-full"].kernels_seconds == min(
            p.kernels_seconds for p in points
        )

    def test_front_is_nondominated(self):
        points = enumerate_design_points(
            "t", chain(4), self.mk_config(), host_other_s=0.0
        )
        front = pareto_front(points)
        assert front  # never empty
        for p in front:
            assert not any(q.dominates(p) for q in points)

    def test_front_sorted_and_tradeoff_monotone(self):
        points = enumerate_design_points(
            "t", chain(4), self.mk_config(), host_other_s=0.0
        )
        front = pareto_front(points)
        times = [p.kernels_seconds for p in front]
        luts = [p.luts for p in front]
        assert times == sorted(times)
        # Along the front, buying speed costs area.
        assert luts == sorted(luts, reverse=True)

    def test_adaptive_mapping_dominates_noc_only(self):
        """noc-adaptive is never worse than noc-only on both axes."""
        points = enumerate_design_points(
            "t", chain(4), self.mk_config(), host_other_s=0.0
        )
        by_label = {p.label: p for p in points}
        adaptive, plain = by_label["noc-adaptive"], by_label["noc-only"]
        assert adaptive.kernels_seconds <= plain.kernels_seconds + 1e-15
        assert adaptive.luts <= plain.luts

    def test_dominates_semantics(self):
        a = DesignPoint("a", 1.0, 1.0, 100, 100, None)
        b = DesignPoint("b", 2.0, 2.0, 200, 200, None)
        c = DesignPoint("c", 1.0, 1.0, 100, 100, None)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(c)  # equal points do not dominate

    def test_duplicate_coordinates_collapse(self):
        a = DesignPoint("a", 1.0, 1.0, 100, 100, None)
        c = DesignPoint("c", 1.0, 1.0, 100, 100, None)
        front = pareto_front([a, c])
        assert len(front) == 1
