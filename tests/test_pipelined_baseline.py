"""Unit tests for the double-buffered (pipelined) baseline variant."""

from __future__ import annotations

import pytest

from repro.core import CommGraph, KernelSpec
from repro.hw.resources import ResourceCost
from repro.sim.systems import (
    SystemParams,
    simulate_baseline,
    simulate_pipelined_baseline,
)

PARAMS = SystemParams()


def chain(n=3, h_in=50_000, kk=50_000):
    ks = {
        f"k{i}": KernelSpec(
            f"k{i}", 40_000.0, 400_000.0, resources=ResourceCost(10, 10)
        )
        for i in range(n)
    }
    edges = {(f"k{i}", f"k{i+1}"): kk for i in range(n - 1)}
    return CommGraph(
        kernels=ks,
        kk_edges=edges,
        host_in={"k0": h_in},
        host_out={f"k{n-1}": h_in},
    )


class TestPipelinedBaseline:
    def test_never_slower_than_sequential(self):
        g = chain()
        seq = simulate_baseline(g, 0.0, PARAMS)
        pipe = simulate_pipelined_baseline(g, 0.0, PARAMS)
        assert pipe.kernels_s <= seq.kernels_s * 1.001

    def test_overlap_bounded_by_fetch_time(self):
        """The saving cannot exceed the total input-fetch time."""
        g = chain()
        seq = simulate_baseline(g, 0.0, PARAMS)
        pipe = simulate_pipelined_baseline(g, 0.0, PARAMS)
        total_fetch = sum(g.d_in(k) for k in g.kernel_names()) * (
            PARAMS.theta_s_per_byte() * 1.2
        )
        assert seq.kernels_s - pipe.kernels_s <= total_fetch

    def test_single_kernel_no_gain(self):
        """With one kernel there is nothing to prefetch behind."""
        ks = {"solo": KernelSpec("solo", 40_000.0, 400_000.0)}
        g = CommGraph(kernels=ks, host_in={"solo": 50_000},
                      host_out={"solo": 50_000})
        seq = simulate_baseline(g, 0.0, PARAMS)
        pipe = simulate_pipelined_baseline(g, 0.0, PARAMS)
        assert pipe.kernels_s == pytest.approx(seq.kernels_s, rel=0.01)

    def test_moves_same_bytes(self):
        g = chain()
        seq = simulate_baseline(g, 0.0, PARAMS)
        pipe = simulate_pipelined_baseline(g, 0.0, PARAMS)
        assert pipe.extras["bus_bytes"] == seq.extras["bus_bytes"]

    def test_spans_still_sequential_compute(self):
        """Prefetch overlaps transfers, not kernel computations."""
        from repro.sim.timeline import overlap_fraction

        g = chain()
        pipe = simulate_pipelined_baseline(g, 0.0, PARAMS)
        assert overlap_fraction(pipe.kernel_spans) == 0.0

    def test_gain_grows_with_fetch_share(self):
        light = chain(h_in=5_000, kk=5_000)
        heavy = chain(h_in=200_000, kk=200_000)

        def gain(g):
            seq = simulate_baseline(g, 0.0, PARAMS)
            pipe = simulate_pipelined_baseline(g, 0.0, PARAMS)
            return (seq.kernels_s - pipe.kernels_s) / seq.kernels_s

        assert gain(heavy) > gain(light)
