"""Tests for the portfolio pre-design assessment."""

from __future__ import annotations

import pytest

from repro.core import CommGraph, KernelSpec
from repro.explore.portfolio import (
    PortfolioEntry,
    assess,
    portfolio_summary,
    rank_portfolio,
    render_portfolio,
)

THETA = 1.3e-9


class TestBoundFormula:
    def test_no_kernel_traffic_bound_is_one(self):
        ks = {"a": KernelSpec("a", 10_000.0, 100_000.0)}
        g = CommGraph(kernels=ks, host_in={"a": 10_000}, host_out={"a": 10_000})
        entry = assess("solo", g, THETA)
        assert entry.kk_traffic_share == 0.0
        assert entry.comm_speedup_bound == pytest.approx(1.0)
        assert not entry.worth_designing

    def test_all_kernel_traffic_bound_is_one_plus_rho(self):
        ks = {
            "a": KernelSpec("a", 10_000.0, 100_000.0),
            "b": KernelSpec("b", 10_000.0, 100_000.0),
        }
        g = CommGraph(kernels=ks, kk_edges={("a", "b"): 100_000})
        entry = assess("pair", g, THETA)
        assert entry.kk_traffic_share == pytest.approx(1.0)
        assert entry.comm_speedup_bound == pytest.approx(
            1.0 + entry.comm_comp_ratio
        )

    def test_bound_monotone_in_share(self):
        def with_host(h):
            ks = {
                "a": KernelSpec("a", 10_000.0, 100_000.0),
                "b": KernelSpec("b", 10_000.0, 100_000.0),
            }
            return assess(
                "x",
                CommGraph(
                    kernels=ks,
                    kk_edges={("a", "b"): 50_000},
                    host_in={"a": h},
                ),
                THETA,
            )

        assert with_host(1_000).comm_speedup_bound > (
            with_host(500_000).comm_speedup_bound
        )


class TestPaperPortfolio:
    @pytest.fixture(scope="class")
    def entries(self, request):
        fitted = request.getfixturevalue("fitted_apps")
        graphs = {name: f.graph for name, f in fitted.items()}
        theta = next(iter(fitted.values())).theta_s_per_byte
        return {e.app: e for e in portfolio_summary(graphs, theta)}

    def test_all_paper_apps_worth_designing(self, entries):
        for e in entries.values():
            assert e.worth_designing, e.app

    def test_bound_dominates_actual_speedup(self, entries, all_results):
        """The comm-only bound must not be beaten except by the parallel
        solutions (duplication/pipelining), which only jpeg and canny
        use meaningfully."""
        for name, r in all_results.items():
            actual = r.proposed_vs_baseline.kernels
            bound = entries[name].comm_speedup_bound
            applied_parallel = any(d.applied for d in r.plan.duplications) or any(
                p.applied for p in r.plan.pipeline
            )
            if not applied_parallel:
                assert actual <= bound + 1e-6, name

    def test_jpeg_ranked_first(self, entries):
        ranked = rank_portfolio(list(entries.values()))
        assert ranked[0].app == "jpeg"

    def test_rank_matches_actual_order(self, entries, all_results):
        ranked = [e.app for e in rank_portfolio(list(entries.values()))]
        actual = sorted(
            all_results,
            key=lambda n: -all_results[n].proposed_vs_baseline.kernels,
        )
        # The bound ranks the extremes correctly.
        assert ranked[0] == actual[0]
        assert ranked[-1] in actual[-2:]

    def test_render(self, entries):
        text = render_portfolio(list(entries.values()))
        assert "jpeg" in text
        assert "bound" in text
        assert "yes" in text


class TestRanking:
    def test_stable_order(self):
        a = PortfolioEntry("a", 1.0, 0.5, "SM", 1.4)
        b = PortfolioEntry("b", 1.0, 0.5, "SM", 1.4)
        c = PortfolioEntry("c", 1.0, 0.9, "NoC", 2.0)
        assert [e.app for e in rank_portfolio([b, c, a])] == ["c", "a", "b"]
