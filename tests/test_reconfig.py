"""Tests for the runtime-reconfigurability extension."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ResourceBudgetError
from repro.flow import to_deployment
from repro.hw.device import Device
from repro.hw.resources import ResourceCost
from repro.reconfig import (
    AppDeployment,
    BitstreamModel,
    IcapModel,
    ReconfigurationScheduler,
    Strategy,
    WorkloadMix,
    region_for,
)
from repro.reconfig.region import check_region_fits_device

STATIC = ResourceCost(3248, 2988)  # platform base + bus


def apps(*sizes):
    return [
        AppDeployment(f"a{i}", ResourceCost(luts, luts), exec_s)
        for i, (luts, exec_s) in enumerate(sizes)
    ]


class TestBitstreamAndIcap:
    def test_size_scales_with_area(self):
        m = BitstreamModel()
        small = m.size_bytes(ResourceCost(1000, 1000))
        big = m.size_bytes(ResourceCost(10_000, 10_000))
        assert big > 5 * small

    def test_reconfig_time_millisecond_scale(self):
        m = BitstreamModel()
        icap = IcapModel()
        t = icap.reconfig_seconds(m.size_bytes(ResourceCost(10_000, 10_000)))
        assert 0.5e-3 < t < 20e-3

    def test_invalid_constants(self):
        with pytest.raises(ConfigurationError):
            BitstreamModel(bytes_per_lut=0)
        with pytest.raises(ConfigurationError):
            IcapModel(bytes_per_second=0)
        with pytest.raises(ConfigurationError):
            IcapModel().reconfig_seconds(-5)


class TestRegion:
    def test_sized_for_largest_module(self):
        region = region_for(
            [ResourceCost(100, 400), ResourceCost(300, 200)], slack=1.0
        )
        assert region.area == ResourceCost(300, 400)

    def test_slack_applied(self):
        region = region_for([ResourceCost(100, 100)], slack=1.5)
        assert region.area == ResourceCost(150, 150)

    def test_fits_module(self):
        region = region_for([ResourceCost(100, 100)], slack=1.2)
        assert region.fits_module(ResourceCost(100, 100))
        assert not region.fits_module(ResourceCost(200, 100))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            region_for([])
        with pytest.raises(ConfigurationError):
            region_for([ResourceCost(1, 1)], slack=0.9)

    def test_device_check(self):
        tiny = Device("tiny", 1000, 1000, 1)
        region = region_for([ResourceCost(900, 900)], slack=1.0)
        with pytest.raises(ResourceBudgetError):
            check_region_fits_device(region, ResourceCost(500, 500), tiny)


class TestWorkloadMix:
    def test_round_robin(self):
        mix = WorkloadMix.round_robin(["a", "b"], rounds=3)
        assert mix.sequence == ("a", "b", "a", "b", "a", "b")
        assert len(mix.switches()) == 5

    def test_bursty(self):
        mix = WorkloadMix.bursty([("a", 3), ("b", 2)])
        assert mix.sequence == ("a", "a", "a", "b", "b")
        assert len(mix.switches()) == 1

    def test_counts(self):
        mix = WorkloadMix.bursty([("a", 3), ("b", 2), ("a", 1)])
        assert mix.counts() == {"a": 4, "b": 2}

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadMix(())
        with pytest.raises(ConfigurationError):
            WorkloadMix.bursty([("a", 0)])


class TestScheduler:
    BIG = Device("big", 10**6, 10**6, 1)
    SMALL = Device("small", 16_000, 16_000, 1)

    def test_static_sums_modules(self):
        sched = ReconfigurationScheduler(
            apps((5000, 0.01), (4000, 0.02)), STATIC, device=self.BIG
        )
        mix = WorkloadMix.round_robin(["a0", "a1"], 2)
        plan = sched.evaluate_static(mix)
        assert plan.resources.luts == STATIC.luts + 9000
        assert plan.reconfig_seconds == 0.0
        assert plan.compute_seconds == pytest.approx(0.06)

    def test_reconfig_counts_switches_plus_initial(self):
        sched = ReconfigurationScheduler(
            apps((5000, 0.01), (4000, 0.02)), STATIC, device=self.BIG
        )
        mix = WorkloadMix.round_robin(["a0", "a1"], 3)  # 5 switches
        plan = sched.evaluate_reconfig(mix)
        assert plan.reconfig_count == 6
        assert plan.reconfig_seconds > 0

    def test_bursty_mix_reconfigures_less(self):
        sched = ReconfigurationScheduler(
            apps((5000, 0.01), (4000, 0.02)), STATIC, device=self.BIG
        )
        alternating = WorkloadMix.round_robin(["a0", "a1"], 6)
        bursty = WorkloadMix.bursty([("a0", 6), ("a1", 6)])
        t_alt = sched.evaluate_reconfig(alternating)
        t_burst = sched.evaluate_reconfig(bursty)
        assert t_burst.reconfig_seconds < t_alt.reconfig_seconds
        assert t_burst.compute_seconds == pytest.approx(t_alt.compute_seconds)

    def test_static_infeasible_on_small_device(self):
        sched = ReconfigurationScheduler(
            apps((8000, 0.01), (8000, 0.01)), STATIC, device=self.SMALL
        )
        mix = WorkloadMix.round_robin(["a0", "a1"], 2)
        assert not sched.evaluate_static(mix).feasible
        assert sched.evaluate_reconfig(mix).feasible

    def test_best_prefers_static_when_it_fits(self):
        """With room to spare, zero switch cost wins."""
        sched = ReconfigurationScheduler(
            apps((5000, 0.001), (4000, 0.001)), STATIC, device=self.BIG
        )
        mix = WorkloadMix.round_robin(["a0", "a1"], 50)
        assert sched.best(mix).strategy is Strategy.STATIC_ALL

    def test_best_falls_back_to_reconfig_when_tight(self):
        sched = ReconfigurationScheduler(
            apps((8000, 0.05), (8000, 0.05)), STATIC, device=self.SMALL
        )
        mix = WorkloadMix.bursty([("a0", 10), ("a1", 10)])
        best = sched.best(mix)
        assert best.strategy in (Strategy.RECONFIG_SINGLE, Strategy.HYBRID_PINNED)
        assert best.feasible

    def test_hybrid_pins_hottest(self):
        # Three apps, device fits static + one pinned + a region for two.
        dev = Device("mid", 26_000, 26_000, 1)
        sched = ReconfigurationScheduler(
            apps((9000, 0.01), (6000, 0.01), (6000, 0.01)),
            STATIC,
            device=dev,
        )
        # a0 switched into most often.
        mix = WorkloadMix(
            ("a0", "a1", "a0", "a2", "a0", "a1", "a0", "a2", "a0")
        )
        plan = sched.evaluate_hybrid(mix)
        assert plan.feasible
        assert "a0" in plan.pinned
        # Pinning the hot app beats reconfiguring everything.
        assert plan.reconfig_seconds < sched.evaluate_reconfig(mix).reconfig_seconds

    def test_no_feasible_strategy_raises(self):
        nano = Device("nano", 4000, 4000, 1)
        sched = ReconfigurationScheduler(
            apps((8000, 0.01), (9000, 0.01)), STATIC, device=nano
        )
        with pytest.raises(ConfigurationError):
            sched.best(WorkloadMix.round_robin(["a0", "a1"], 2))

    def test_unknown_app_in_mix_rejected(self):
        sched = ReconfigurationScheduler(
            apps((1000, 0.01)), STATIC, device=self.BIG
        )
        with pytest.raises(ConfigurationError):
            sched.evaluate_static(WorkloadMix(("ghost",)))

    def test_duplicate_apps_rejected(self):
        a = AppDeployment("x", ResourceCost(1, 1), 0.1)
        with pytest.raises(ConfigurationError):
            ReconfigurationScheduler([a, a], STATIC)


class TestFlowAdapter:
    def test_to_deployment_from_experiment(self, all_results):
        dep = to_deployment(all_results["klt"])
        assert dep.name == "klt"
        # KLT's module: kernels + one crossbar.
        est = all_results["klt"].synth_proposed
        assert dep.module == est.kernels + est.custom_interconnect
        assert dep.exec_seconds > 0

    def test_paper_apps_schedulable(self, all_results):
        deployments = [to_deployment(r) for r in all_results.values()]
        sched = ReconfigurationScheduler(deployments, STATIC)
        mix = WorkloadMix.round_robin([d.name for d in deployments], 4)
        plans = sched.evaluate(mix)
        assert all(p.feasible for p in plans.values())  # xc5vfx130t is big
        best = sched.best(mix)
        assert best.total_seconds <= min(
            p.total_seconds for p in plans.values() if p.feasible
        ) + 1e-12
