"""Concurrency and lifecycle tests for :class:`repro.service.DesignService`.

The service promises three things under parallel callers that are easy
to get silently wrong and cheap to test exactly:

* an identical job submitted by N racing threads is *computed once* —
  late arrivals join the in-flight computation or hit the cache, never
  re-run the pipeline;
* the coalescing/caching counters are exact, not approximate, for
  deterministic single-threaded batches;
* ``close()`` is idempotent, enforces rejection of later submissions,
  drains the worker pool (the historical per-batch
  ``shutdown(wait=False)`` leaked processes under repeated open/close),
  and arrives via context-manager exit too.
"""

from __future__ import annotations

import multiprocessing
import threading
import time

import pytest

from repro.errors import JobExecutionError, ServiceError
from repro.service import DesignJob, DesignService

# -- instrumented runners ---------------------------------------------------

def _make_counting_runner(delay_s: float = 0.0):
    """An injected runner that counts real executions atomically."""
    lock = threading.Lock()
    calls = []

    def runner(job: DesignJob):
        with lock:
            calls.append(job.fingerprint())
        if delay_s:
            time.sleep(delay_s)
        return {"app": job.app, "fingerprint": job.fingerprint()}

    return runner, calls


def _failing_runner(job: DesignJob):
    raise ValueError("boom")


class TestCrossThreadCoalescing:
    def test_identical_job_computed_exactly_once(self):
        """Eight racing threads, one fingerprint, one execution."""
        runner, calls = _make_counting_runner(delay_s=0.15)
        threads = 8
        barrier = threading.Barrier(threads)
        job = DesignJob("klt", simulate=False)
        results = [None] * threads
        errors = []

        with DesignService(jobs=1, runner=runner) as service:

            def worker(slot: int) -> None:
                barrier.wait()
                try:
                    results[slot] = service.submit(job)
                except Exception as exc:  # surfaced after join
                    errors.append(exc)

            pool = [
                threading.Thread(target=worker, args=(i,))
                for i in range(threads)
            ]
            for t in pool:
                t.start()
            for t in pool:
                t.join()

            assert errors == []
            assert len(calls) == 1, "pipeline ran more than once"
            snap = service.metrics.snapshot()
            assert snap["counters"]["jobs_completed"] == 1
            assert snap["counters"]["jobs_submitted"] == threads
            # every thread either owned, joined in-flight, or hit the
            # cache — the three paths partition the batch exactly.
            joined = snap["counters"].get("jobs_joined", 0)
            hits = service.cache.stats.hits
            assert 1 + joined + hits == threads
            summaries = {
                tuple(sorted(r.summary.items())) for r in results
            }
            assert len(summaries) == 1
            # exactly the owner's result is neither cached nor coalesced
            fresh = [
                r for r in results if not r.cached and not r.coalesced
            ]
            assert len(fresh) == 1

    def test_joiners_see_owner_failure(self):
        """A failing owner propagates its error to joining threads."""
        threads = 4
        barrier = threading.Barrier(threads)
        job = DesignJob("klt", simulate=False)
        outcomes = []

        with DesignService(jobs=1, runner=_failing_runner) as service:

            def worker() -> None:
                barrier.wait()
                try:
                    service.submit(job)
                    outcomes.append("ok")
                except JobExecutionError:
                    outcomes.append("failed")

            pool = [
                threading.Thread(target=worker) for _ in range(threads)
            ]
            for t in pool:
                t.start()
            for t in pool:
                t.join()

        assert outcomes == ["failed"] * threads
        assert service.metrics.snapshot()["counters"].get(
            "jobs_completed", 0
        ) == 0

    def test_parallel_distinct_jobs_counters_exact(self):
        """Disjoint batches from racing threads: no spurious work."""
        runner, calls = _make_counting_runner(delay_s=0.02)
        apps = ("canny", "jpeg", "klt", "fluid")
        jobs_by_thread = [
            [DesignJob(app, scale=s, simulate=False) for app in apps]
            for s in (1, 2)
        ]
        barrier = threading.Barrier(len(jobs_by_thread))

        with DesignService(jobs=1, runner=runner) as service:

            def worker(batch) -> None:
                barrier.wait()
                service.submit_many(batch)

            pool = [
                threading.Thread(target=worker, args=(b,))
                for b in jobs_by_thread
            ]
            for t in pool:
                t.start()
            for t in pool:
                t.join()

            snap = service.metrics.snapshot()
            assert len(calls) == 8  # 4 apps x 2 scales, each once
            assert snap["counters"]["jobs_completed"] == 8
            assert service.cache.stats.misses == 8
            assert service.cache.stats.hits == 0

            # a second wave is served entirely from the cache
            for batch in jobs_by_thread:
                service.submit_many(batch)
            assert len(calls) == 8
            assert service.cache.stats.hits == 8


class TestBatchCounters:
    def test_in_batch_duplicates_coalesce_exactly(self):
        runner, calls = _make_counting_runner()
        a = DesignJob("klt", simulate=False)
        b = DesignJob("jpeg", simulate=False)
        with DesignService(jobs=1, runner=runner) as service:
            results = service.submit_many([a, a, b])
            snap = service.metrics.snapshot()
            assert len(calls) == 2
            assert snap["counters"]["jobs_submitted"] == 3
            assert snap["counters"]["jobs_coalesced"] == 1
            assert snap["counters"]["jobs_completed"] == 2
            assert service.cache.stats.misses == 2
            assert [r.coalesced for r in results] == [False, True, False]

            # resubmitting is pure cache traffic
            again = service.submit_many([a, a, b])
            assert len(calls) == 2
            assert service.cache.stats.hits == 2
            assert all(r.cached for r in again[::2])


class TestLifecycle:
    def test_close_is_idempotent(self):
        service = DesignService(jobs=1)
        assert not service.closed
        service.close()
        assert service.closed
        service.close()  # second close is a no-op, not an error

    def test_submit_after_close_raises(self):
        service = DesignService(jobs=1)
        service.close()
        with pytest.raises(ServiceError):
            service.submit(DesignJob("klt", simulate=False))

    def test_context_manager_closes(self):
        with DesignService(jobs=1) as service:
            assert not service.closed
        assert service.closed

    def test_close_reaps_worker_pool(self):
        """The pool exists while serving and is gone after close()."""
        service = DesignService(jobs=2)
        jobs = [
            DesignJob("klt", simulate=False),
            DesignJob("jpeg", simulate=False),
        ]
        service.submit_many(jobs)
        if service._runner.last_mode == "parallel":
            assert service._runner._pool is not None
        service.close()
        assert service._runner._pool is None

    def test_repeated_open_close_leaks_no_processes(self):
        """Three open/serve/close cycles leave zero child processes."""
        jobs = [
            DesignJob("klt", simulate=False),
            DesignJob("jpeg", simulate=False),
        ]
        for _ in range(3):
            with DesignService(jobs=2) as service:
                service.submit_many(jobs)
        # shutdown(wait=True) joins workers; nothing may linger.
        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children():
            assert time.monotonic() < deadline, (
                f"leaked workers: {multiprocessing.active_children()}"
            )
            time.sleep(0.05)

    def test_pool_is_reused_across_batches(self):
        """One service, many batches, one pool (no per-batch churn)."""
        service = DesignService(jobs=2)
        try:
            job = DesignJob("klt", simulate=False)
            service.submit(job)
            if service._runner.last_mode != "parallel":
                pytest.skip("platform cannot fork a worker pool")
            first = service._runner._pool
            service.submit(DesignJob("jpeg", simulate=False))
            assert service._runner._pool is first
        finally:
            service.close()
