"""Tests for ``repro.obs.flight``: recorder, sampler, watchdog, report.

The unit halves drive everything with fake clocks and explicit
``sample_once`` / ``check_once`` calls — no sleeping, no real threads
where determinism matters. The e2e half boots a real server and proves
the acceptance criteria: flight capture never perturbs served results,
a dump round-trips through ``repro postmortem``, and a tripped watchdog
degrades ``/readyz`` and writes a dump.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.io import FORMAT_VERSION, canonical_json, save_json
from repro.obs.flight import (
    FLIGHT_KIND,
    SAMPLED_PROFILE_KIND,
    SIM_PHASES,
    FlightRecorder,
    Heartbeat,
    RingTracer,
    StackSampler,
    StallWatchdog,
    build_flight_report,
    frame_label,
    load_flight_report,
    render_flight_report,
    thread_stacks,
    write_flight_dump,
)
from repro.obs.runtime.events import EventLog
from repro.obs.trace import Tracer
from repro.service.metrics import MetricsRegistry


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestRingTracer:
    def test_ring_keeps_newest_spans_with_monotonic_seq(self):
        tracer = RingTracer(capacity=3)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        events = tracer.events
        assert len(events) == 3
        assert [e.name for e in events] == ["s7", "s8", "s9"]
        # seq keeps counting across evictions — order survives the wrap
        assert [e.seq for e in events] == [7, 8, 9]
        assert tracer.recorded == 10

    def test_merge_respects_capacity(self):
        tracer = RingTracer(capacity=2)
        with tracer.span("local"):
            pass
        worker = Tracer()
        with worker.span("w1"):
            pass
        with worker.span("w2"):
            pass
        merged = tracer.merge([e.as_dict() for e in worker.events])
        assert merged == 2
        assert [e.name for e in tracer.events] == ["w1", "w2"]
        assert tracer.recorded == 3

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            RingTracer(capacity=0)


class TestFlightRecorder:
    def test_snapshot_ring_is_bounded_and_aged(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        recorder = FlightRecorder(
            registry=registry, snapshot_capacity=2,
            snapshot_interval_s=5.0, clock=clock,
        )
        for _ in range(4):
            assert recorder.snapshot_metrics()
            clock.advance(1.0)
        snaps = recorder.snapshots()
        assert len(snaps) == 2
        # oldest kept snapshot was taken 2s ago, newest 1s ago
        assert [s["age_s"] for s in snaps] == [2.0, 1.0]
        assert "counters" in snaps[0]["metrics"]

    def test_maybe_snapshot_rate_limits(self):
        clock = FakeClock()
        recorder = FlightRecorder(
            registry=MetricsRegistry(), snapshot_interval_s=5.0,
            clock=clock,
        )
        assert recorder.maybe_snapshot()      # first is always due
        assert not recorder.maybe_snapshot()  # same instant: suppressed
        clock.advance(4.9)
        assert not recorder.maybe_snapshot()
        clock.advance(0.2)
        assert recorder.maybe_snapshot()

    def test_no_registry_is_inert(self):
        recorder = FlightRecorder()
        assert not recorder.snapshot_metrics()
        assert not recorder.maybe_snapshot()
        assert recorder.snapshots() == []

    def test_rings_collect_all_three_sources(self):
        tracer = RingTracer(capacity=8)
        events = EventLog(capacity=8)
        recorder = FlightRecorder(
            tracer=tracer, events=events, registry=MetricsRegistry(),
        )
        with tracer.span("design"):
            pass
        events.emit("cache_hit", trace_id="t1")
        recorder.snapshot_metrics()
        rings = recorder.rings()
        assert [s["name"] for s in rings["spans"]] == ["design"]
        assert [e["kind"] for e in rings["events"]] == ["cache_hit"]
        assert len(rings["metric_snapshots"]) == 1
        state = recorder.state()
        assert state["spans"] == 1
        assert state["events"] == 1
        assert state["metric_snapshots"] == 1

    def test_validates_config(self):
        with pytest.raises(ConfigurationError):
            FlightRecorder(snapshot_capacity=0)
        with pytest.raises(ConfigurationError):
            FlightRecorder(snapshot_interval_s=0.0)


def _burn(deadline: float) -> None:
    while time.perf_counter() < deadline:
        sum(range(100))


class TestStackSampler:
    def test_sample_once_captures_this_thread(self):
        sampler = StackSampler(interval_s=0.001)
        taken = sampler.sample_once()
        assert taken >= 1
        assert sampler.samples == 1
        stacks = sampler.stacks()
        flat = [label for stack in stacks for label in stack]
        assert any("test_sample_once_captures_this_thread" in l
                   for l in flat)

    def test_thread_filter(self):
        sampler = StackSampler(
            interval_s=0.001, threads=[threading.get_ident()]
        )
        sampler.sample_once()
        # every captured stack belongs to this thread → exactly one
        assert len(sampler.stacks()) == 1

    def test_skip_tid_excludes_caller(self):
        sampler = StackSampler(
            interval_s=0.001, threads=[threading.get_ident()]
        )
        taken = sampler.sample_once(skip_tid=threading.get_ident())
        assert taken == 0

    def test_live_sampling_round_trips(self):
        sampler = StackSampler(
            interval_s=0.001, threads=[threading.get_ident()]
        )
        with sampler:
            _burn(time.perf_counter() + 0.05)
        assert sampler.samples > 0
        text = sampler.collapsed()
        assert "_burn" in text
        for line in text.strip().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) >= 1

    def test_collapsed_empty_is_empty_string(self):
        assert StackSampler(interval_s=0.001).collapsed() == ""

    def test_speedscope_document_shape(self):
        sampler = StackSampler(
            interval_s=0.001, threads=[threading.get_ident()]
        )
        sampler.sample_once()
        sampler.sample_once()
        doc = sampler.to_speedscope(name="unit")
        assert doc["kind"] == SAMPLED_PROFILE_KIND
        assert doc["version"] == FORMAT_VERSION
        profile = doc["profiles"][0]
        assert profile["type"] == "sampled"
        assert len(profile["samples"]) == len(profile["weights"])
        frames = doc["shared"]["frames"]
        for row in profile["samples"]:
            assert all(0 <= idx < len(frames) for idx in row)
        # weights are seconds: 2 samples x 1ms
        assert sum(profile["weights"]) == pytest.approx(0.002)
        assert profile["endValue"] == pytest.approx(
            sum(profile["weights"])
        )
        # the document is JSON-serializable as-is
        json.dumps(doc)

    def test_phase_attribution_by_innermost_frame(self):
        sampler = StackSampler(interval_s=0.001)
        key = (
            "run (fastcore/engine.py)",
            "pop (fastcore/calendar.py)",
        )
        with sampler._lock:
            sampler._counts[(1, key)] = 3
            sampler._counts[(1, ("main (repro/cli.py)",))] = 1
            sampler._samples = 4
        totals = sampler.phase_totals(SIM_PHASES)
        # innermost frame (calendar.py) wins over the engine file needle
        assert totals["calendar_queue"] == 3
        assert totals["other"] == 1
        fractions = sampler.phase_fractions(SIM_PHASES)
        assert fractions["calendar_queue"] == pytest.approx(0.75)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_phase_fractions_empty_is_all_zero(self):
        fractions = StackSampler(interval_s=0.001).phase_fractions()
        assert set(fractions.values()) == {0.0}

    def test_fold_spans_attributes_timeline_to_innermost_span(self):
        tracer = Tracer()
        sampler = StackSampler(
            interval_s=0.001, threads=[threading.get_ident()]
        )
        with tracer.span("outer"):
            with tracer.span("inner"):
                sampler.sample_once()
        folded = sampler.fold_spans(tracer)
        assert folded == {"inner": 1}

    def test_fold_spans_outside_any_span(self):
        tracer = Tracer()
        sampler = StackSampler(
            interval_s=0.001, threads=[threading.get_ident()]
        )
        sampler.sample_once()
        with tracer.span("later"):
            pass
        assert sampler.fold_spans(tracer) == {"(no span)": 1}

    def test_rejects_absurd_interval_and_depth(self):
        with pytest.raises(ConfigurationError):
            StackSampler(interval_s=1e-6)
        with pytest.raises(ConfigurationError):
            StackSampler(interval_s=0.001, max_depth=0)

    def test_frame_label_shapes(self):
        assert frame_label("/a/b/pkg/mod.py", "fn") == "fn (pkg/mod.py)"
        assert frame_label("/a/pkg/mod.py", "fn", 7) == "fn (pkg/mod.py:7)"


class TestWatchdog:
    def test_heartbeat_budget(self):
        clock = FakeClock()
        beat = Heartbeat("loop", max_age_s=2.0, clock=clock)
        assert beat.check() is None
        clock.advance(2.5)
        message = beat.check()
        assert message is not None and "2.50s" in message
        beat.beat()
        assert beat.check() is None

    def test_trip_and_clear_are_edge_triggered(self):
        clock = FakeClock()
        events = EventLog(capacity=16)
        trips, clears = [], []
        dog = StallWatchdog(
            interval_s=0.25, events=events, clock=clock,
            on_trip=lambda s, m: trips.append((s, m)),
            on_clear=clears.append,
        )
        beat = dog.heartbeat("loop", max_age_s=1.0)
        assert dog.check_once() == []
        clock.advance(5.0)
        # three consecutive stalled checks: exactly one trip edge
        for _ in range(3):
            assert dog.check_once()
        assert len(trips) == 1 and trips[0][0] == "loop"
        assert dog.tripped and dog.trips == 1
        beat.beat()
        assert dog.check_once() == []
        assert clears == ["loop"]
        assert not dog.tripped
        kinds = [e.kind for e in events.events()]
        assert kinds == ["watchdog_trip", "watchdog_clear"]

    def test_raising_probe_counts_as_stall(self):
        dog = StallWatchdog()

        def broken() -> None:
            raise RuntimeError("boom")

        dog.probe("pool", broken)
        stalls = dog.check_once()
        assert len(stalls) == 1
        assert "RuntimeError" in stalls[0][1]

    def test_status_reports_checks_and_stalls(self):
        clock = FakeClock()
        dog = StallWatchdog(clock=clock)
        dog.heartbeat("loop", max_age_s=1.0)
        dog.probe("batcher", lambda: None)
        clock.advance(9.0)
        dog.check_once()
        status = dog.status()
        assert status["checks"] == ["loop", "batcher"]
        assert "loop" in status["stalled"]
        assert status["trips"] == 1
        assert status["running"] is False

    def test_thread_lifecycle_is_idempotent(self):
        dog = StallWatchdog(interval_s=0.01)
        dog.start()
        dog.start()
        assert dog.status()["running"]
        dog.stop()
        dog.stop()
        assert not dog.status()["running"]

    def test_validates_interval(self):
        with pytest.raises(ConfigurationError):
            StallWatchdog(interval_s=0.0)
        with pytest.raises(ConfigurationError):
            Heartbeat("x", max_age_s=0.0)


class TestFlightReport:
    def test_thread_stacks_include_this_function(self):
        rows = thread_stacks()
        me = threading.get_ident()
        mine = next(r for r in rows if r["tid"] == me)
        assert mine["name"] == threading.current_thread().name
        assert any("test_thread_stacks_include_this_function" in label
                   for label in mine["stack"])

    def test_build_write_load_render_roundtrip(self, tmp_path):
        tracer = RingTracer(capacity=8)
        with tracer.span("design", category="pipeline"):
            pass
        events = EventLog(capacity=8)
        events.emit("request_start", trace_id="ab" * 16, route="/v1/design")
        registry = MetricsRegistry()
        registry.incr("http_requests")
        recorder = FlightRecorder(
            tracer=tracer, events=events, registry=registry
        )
        recorder.snapshot_metrics()
        dog = StallWatchdog()
        dog.probe("pool", lambda: "wedged")
        dog.check_once()

        doc = build_flight_report(
            "unit-test", recorder=recorder, watchdog=dog,
            state={"admission": {"inflight": 0}},
        )
        assert doc["kind"] == FLIGHT_KIND
        assert doc["version"] == FORMAT_VERSION
        path = write_flight_dump(doc, tmp_path)
        assert path.name.startswith("flight-") and path.suffix == ".json"

        loaded = load_flight_report(path)
        assert loaded["reason"] == "unit-test"
        text = render_flight_report(loaded)
        assert "flight report: unit-test" in text
        assert "STALLED pool: wedged" in text
        assert "request_start" in text
        assert "design" in text
        assert "admission" in text

    def test_repeated_dumps_never_overwrite(self, tmp_path):
        doc = build_flight_report("again")
        first = write_flight_dump(doc, tmp_path)
        second = write_flight_dump(doc, tmp_path)
        assert first != second
        assert first.exists() and second.exists()

    def test_load_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "not-flight.json"
        save_json({"kind": "bench-report", "version": FORMAT_VERSION},
                  path)
        with pytest.raises(ConfigurationError):
            load_flight_report(path)

    def test_render_tolerates_minimal_document(self):
        text = render_flight_report({
            "kind": FLIGHT_KIND, "version": FORMAT_VERSION,
            "reason": "bare", "ts": 0.0, "pid": 1, "python": "3",
            "threads": [], "rings": {}, "watchdog": None, "state": {},
        })
        assert "flight report: bare" in text


class TestEventLogRotation:
    def test_sink_rotates_at_size_and_keeps_one_backup(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(capacity=8, sink=str(path), sink_max_bytes=400)
        for i in range(40):
            log.emit("cache_hit", trace_id=f"t{i:02d}")
        log.close()
        assert log.rotations >= 1
        backup = tmp_path / "events.jsonl.1"
        assert backup.exists()
        # every line in both files is intact JSON of the right kind
        for file in (path, backup):
            for line in file.read_text().splitlines():
                assert json.loads(line)["kind"] == "cache_hit"
        assert path.stat().st_size <= 400

    def test_no_limit_never_rotates(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(capacity=8, sink=str(path))
        for _ in range(50):
            log.emit("cache_hit")
        log.close()
        assert log.rotations == 0
        assert not (tmp_path / "events.jsonl.1").exists()

    def test_rejects_nonpositive_limit(self, tmp_path):
        with pytest.raises(ConfigurationError):
            EventLog(capacity=8, sink=str(tmp_path / "e.jsonl"),
                     sink_max_bytes=0)


class TestServiceSampling:
    def test_serial_service_ships_collapsed_samples(self):
        from repro.service import DesignJob, DesignService

        job = DesignJob(app="klt", simulate=True)
        with DesignService(jobs=1) as plain:
            baseline = plain.submit(job)
        assert baseline.samples is None
        with DesignService(jobs=1, sample_interval_s=0.001) as sampling:
            result = sampling.submit(job)
        # sampled result is byte-identical; samples ride alongside
        assert result.summary == baseline.summary
        assert result.samples is not None
        for line in result.samples.strip().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) >= 1

    def test_pool_service_ships_samples_from_workers(self):
        from repro.service import DesignJob, DesignService

        jobs = [DesignJob(app=a, simulate=True)
                for a in ("klt", "canny")]
        with DesignService(jobs=2, sample_interval_s=0.001) as service:
            results = service.submit_many(jobs)
        assert all(r.samples is not None for r in results)

    def test_cached_results_carry_no_samples(self):
        from repro.service import DesignJob, DesignService

        job = DesignJob(app="klt")
        with DesignService(jobs=1, sample_interval_s=0.001) as service:
            service.submit(job)
            cached = service.submit(job)
        assert cached.cached
        assert cached.samples is None


@pytest.fixture(scope="module")
def flight_server(tmp_path_factory):
    from repro.server import ServerConfig, start_in_thread

    flight_dir = tmp_path_factory.mktemp("flight")
    config = ServerConfig(
        port=0, quota_rate=10_000.0, quota_burst=10_000.0,
        flight_dir=str(flight_dir),
        watchdog_interval_s=0.05,
    )
    handle = start_in_thread(config)
    yield handle, flight_dir
    handle.stop()


class TestServerFlightEndToEnd:
    def test_served_results_identical_with_flight_recorder(
        self, flight_server
    ):
        from repro.flow import result_summary, run_experiment
        from repro.server import DesignClient

        handle, _ = flight_server
        client = DesignClient(handle.url, tenant="pytest")
        doc = client.design("klt")
        served = canonical_json(doc["summary"]).encode()
        local = canonical_json(result_summary(run_experiment("klt"))).encode()
        assert served == local

    def test_debug_reports_flight_section(self, flight_server):
        from repro.server import DesignClient

        handle, _ = flight_server
        client = DesignClient(handle.url, tenant="pytest")
        client.design("canny")
        flight = client.debug()["debug"]["flight"]
        assert flight["recorder"]["spans"] > 0
        assert "event_loop" in flight["watchdog"]["checks"]
        assert "batcher" in flight["watchdog"]["checks"]
        assert flight["watchdog"]["running"] is True
        assert flight["stalled"] is None

    def test_flight_dump_parses_and_renders(self, flight_server):
        from repro.cli import main
        from repro.server import DesignClient

        handle, flight_dir = flight_server
        client = DesignClient(handle.url, tenant="pytest")
        client.design("jpeg")
        path = handle.server.flight_dump("test-trigger")
        assert path.parent == flight_dir
        doc = load_flight_report(path)
        assert doc["reason"] == "test-trigger"
        assert doc["state"]["admission"]["draining"] is False
        assert doc["state"]["service"]["jobs_submitted"] >= 1
        names = [t["name"] for t in doc["threads"]]
        assert "repro-server" in names
        kinds = {e["kind"] for e in doc["rings"]["events"]}
        assert "request_start" in kinds
        # a dump logs itself *after* capture, so it shows in later dumps
        second = load_flight_report(handle.server.flight_dump("second"))
        assert "flight_dump" in {
            e["kind"] for e in second["rings"]["events"]
        }
        # and the CLI renders it
        assert main(["postmortem", str(path)]) == 0
        assert main(["postmortem", str(path), "--json"]) == 0

    def test_top_json_is_machine_readable(self, flight_server, capsys):
        from repro.cli import main

        handle, _ = flight_server
        assert main(["top", "--url", handle.url, "--json"]) == 0
        out = capsys.readouterr().out
        assert "\x1b[" not in out  # no ANSI screen control
        doc = json.loads(out)
        assert doc["kind"] == "debug-response"
        debug = doc["debug"]
        assert "flight" in debug and "admission" in debug
        assert debug["flight"]["watchdog"]["running"] is True

    def test_watchdog_trip_degrades_readyz_and_dumps(self, flight_server):
        import urllib.error
        import urllib.request

        handle, flight_dir = flight_server
        server = handle.server
        before = set(flight_dir.glob("flight-*.json"))
        # Wedge a probe artificially; the real watchdog thread must
        # notice, flip /readyz to 503, and write a dump.
        server.watchdog.probe("unit_wedge", lambda: "forced stall")
        deadline = time.monotonic() + 5.0
        status = None
        while time.monotonic() < deadline:
            try:
                with urllib.request.urlopen(
                    handle.url + "/readyz", timeout=5
                ) as resp:
                    status = resp.status
            except urllib.error.HTTPError as err:
                status = err.code
            if status == 503:
                break
            time.sleep(0.02)
        assert status == 503
        new = set(flight_dir.glob("flight-*.json")) - before
        assert new, "watchdog trip should write a flight dump"
        doc = load_flight_report(sorted(new)[0])
        assert doc["reason"] == "watchdog:unit_wedge"
        assert "unit_wedge" in doc["watchdog"]["stalled"]
