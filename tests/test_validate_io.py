"""Tests for plan validation and JSON serialization."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import CommGraph, DesignConfig, KernelSpec, design_interconnect
from repro.core.plan import InterconnectPlan, KernelMapping
from repro.core.sharing import SharedMemoryLink
from repro.core.topology import KernelAttach, MemoryAttach, ReceiveClass, SendClass
from repro.core.validate import check_plan, validate_plan
from repro.errors import ConfigurationError, DesignError
from repro.io import (
    graph_from_dict,
    graph_to_dict,
    load_json,
    plan_from_dict,
    plan_to_dict,
    profile_from_dict,
    profile_to_dict,
    save_json,
)

THETA = 1.3e-9


def sample_graph():
    ks = {
        "p": KernelSpec("p", 10_000.0, 80_000.0, streams_host_io=True),
        "c": KernelSpec("c", 20_000.0, 160_000.0, parallelizable=True),
        "d": KernelSpec("d", 5_000.0, 40_000.0),
    }
    return CommGraph(
        kernels=ks,
        kk_edges={("p", "c"): 1000, ("p", "d"): 500, ("c", "d"): 800},
        host_in={"p": 2000},
        host_out={"d": 3000},
    )


def sample_plan():
    return design_interconnect(
        "sample", sample_graph(),
        DesignConfig(theta_s_per_byte=THETA, stream_overhead_s=1e-6),
    )


class TestValidate:
    def test_designer_plans_are_valid(self, all_results):
        for r in all_results.values():
            assert validate_plan(r.plan) == []
            assert validate_plan(r.noc_only_plan) == []
            check_plan(r.plan)  # does not raise

    def test_fuzz_style_plan_valid(self):
        assert validate_plan(sample_plan()) == []

    def test_infeasible_mapping_detected(self):
        plan = sample_plan()
        bad = dict(plan.mappings)
        name = next(iter(bad))
        bad[name] = KernelMapping(
            kernel=name,
            receive=ReceiveClass.R1,
            send=SendClass.S2,
            attach_kernel=KernelAttach.K1,
            attach_memory=MemoryAttach.M2,
        )
        broken = dataclasses.replace(plan, mappings=bad)
        problems = validate_plan(broken)
        assert any("infeasible" in p for p in problems)
        with pytest.raises(DesignError):
            check_plan(broken)

    def test_non_exclusive_sharing_detected(self):
        plan = sample_plan()
        # p sends to several consumers, so p->d cannot be a sharing pair.
        broken = dataclasses.replace(
            plan,
            sharing=(SharedMemoryLink("p", "d", 500, crossbar=True),),
        )
        problems = validate_plan(broken)
        assert any("not an exclusive pair" in p for p in problems)

    def test_missing_crossbar_detected(self):
        ks = {
            "a": KernelSpec("a", 10.0, 10.0),
            "b": KernelSpec("b", 10.0, 10.0),
        }
        g = CommGraph(kernels=ks, kk_edges={("a", "b"): 100},
                      host_out={"b": 50})
        plan = design_interconnect(
            "x", g, DesignConfig(theta_s_per_byte=THETA)
        )
        assert validate_plan(plan) == []
        broken = dataclasses.replace(
            plan,
            sharing=(SharedMemoryLink("a", "b", 100, crossbar=False),),
        )
        assert any("no crossbar" in p for p in validate_plan(broken))

    def test_uncovered_edge_detected(self):
        plan = sample_plan()
        assert plan.noc is not None
        chopped = dataclasses.replace(
            plan.noc, edges=plan.noc.edges[:-1]
        )
        broken = dataclasses.replace(plan, noc=chopped)
        assert any("neither shared memory nor NoC" in p
                   for p in validate_plan(broken))


class TestProfileRoundTrip:
    def test_roundtrip(self, fitted_apps):
        profile = fitted_apps["jpeg"].app.profile()
        data = profile_to_dict(profile)
        back = profile_from_dict(data)
        assert {(e.producer, e.consumer, e.bytes, e.umas) for e in back.edges} == {
            (e.producer, e.consumer, e.bytes, e.umas) for e in profile.edges
        }
        assert back.entry_name == profile.entry_name
        for f in profile.functions:
            assert back.function(f.name).work == f.work

    def test_wrong_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            profile_from_dict({"kind": "plan", "version": 1})

    def test_wrong_version_rejected(self):
        with pytest.raises(ConfigurationError):
            profile_from_dict({"kind": "profile", "version": 99})


class TestGraphRoundTrip:
    def test_roundtrip(self):
        g = sample_graph()
        back = graph_from_dict(graph_to_dict(g))
        assert back.kk_edges == g.kk_edges
        assert dict(back.host_in) == dict(g.host_in)
        for k in g.kernel_names():
            assert back.kernel(k) == g.kernel(k)

    def test_tampered_graph_rejected_by_constructor(self):
        data = graph_to_dict(sample_graph())
        data["kk_edges"][0]["producer"] = "ghost"
        with pytest.raises(DesignError):
            graph_from_dict(data)


class TestPlanRoundTrip:
    def test_roundtrip_preserves_everything(self):
        plan = sample_plan()
        back = plan_from_dict(plan_to_dict(plan))
        assert back.app == plan.app
        assert back.sharing == plan.sharing
        assert back.duplications == plan.duplications
        assert back.pipeline == plan.pipeline
        assert back.mappings == dict(plan.mappings)
        assert back.noc.placement.positions == plan.noc.placement.positions
        assert back.noc.edges == plan.noc.edges
        assert back.component_counts() == plan.component_counts()
        assert back.solution_label() == plan.solution_label()

    def test_roundtripped_plan_validates(self):
        plan = sample_plan()
        assert validate_plan(plan_from_dict(plan_to_dict(plan))) == []

    def test_roundtrip_paper_plans(self, all_results):
        for r in all_results.values():
            back = plan_from_dict(plan_to_dict(r.plan))
            assert back.solution_label() == r.plan.solution_label()
            assert back.component_counts() == r.plan.component_counts()

    def test_plan_without_noc(self, all_results):
        plan = all_results["klt"].plan
        back = plan_from_dict(plan_to_dict(plan))
        assert back.noc is None


class TestFileHelpers:
    def test_save_and_load(self, tmp_path):
        plan = sample_plan()
        path = tmp_path / "plan.json"
        save_json(plan_to_dict(plan), path)
        back = plan_from_dict(load_json(path))
        assert back.solution_label() == plan.solution_label()
