"""Tests for units and clock conversions."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.units import (
    Clock,
    HOST_CLOCK,
    KERNEL_CLOCK,
    as_megabytes,
    mhz,
    percent_saving,
    speedup,
)


class TestClock:
    def test_roundtrip(self):
        clk = Clock(100e6)
        assert clk.seconds_to_cycles(clk.cycles_to_seconds(12345)) == pytest.approx(
            12345
        )

    def test_period(self):
        assert Clock(100e6).period_s == pytest.approx(10e-9)

    def test_rescale(self):
        # 100 kernel cycles = 400 host cycles.
        assert KERNEL_CLOCK.rescale(100, HOST_CLOCK) == pytest.approx(400)

    def test_invalid_frequency(self):
        with pytest.raises(ConfigurationError):
            Clock(0)
        with pytest.raises(ConfigurationError):
            Clock(-5)

    def test_paper_frequencies(self):
        assert HOST_CLOCK.freq_hz == 400e6
        assert KERNEL_CLOCK.freq_hz == 100e6


class TestHelpers:
    def test_mhz(self):
        assert mhz(150) == 150e6

    def test_as_megabytes(self):
        assert as_megabytes(2 * 1024 * 1024) == pytest.approx(2.0)

    def test_speedup(self):
        assert speedup(10.0, 5.0) == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            speedup(10.0, 0.0)

    def test_percent_saving(self):
        assert percent_saving(10.0, 4.0) == pytest.approx(60.0)
        assert percent_saving(10.0, 10.0) == pytest.approx(0.0)
        with pytest.raises(ConfigurationError):
            percent_saving(0.0, 1.0)
