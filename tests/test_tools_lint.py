"""Unit tests for the repo's AST lint rules (tools/lint_repro.py)."""

import ast
import importlib.util
import json
import pathlib
import sys

import pytest

TOOL_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "tools" / "lint_repro.py"
)
spec = importlib.util.spec_from_file_location("lint_repro", TOOL_PATH)
assert spec is not None and spec.loader is not None
lint_repro = importlib.util.module_from_spec(spec)
sys.modules["lint_repro"] = lint_repro
spec.loader.exec_module(lint_repro)

FAKE = pathlib.Path("/root/repo/src/repro/sim/fake.py")


def _findings(checker, source, path=FAKE):
    return list(checker(path, ast.parse(source)))


# -- R1: wall clock -------------------------------------------------------
@pytest.mark.parametrize(
    "source",
    [
        "import time\nx = time.time()\n",
        "import time\nx = time.time_ns()\n",
        "import datetime\nx = datetime.datetime.now()\n",
        "from datetime import datetime\nx = datetime.utcnow()\n",
    ],
)
def test_r1_flags_wall_clock_reads(source):
    found = _findings(lint_repro.check_wall_clock, source)
    assert len(found) == 1
    assert found[0].rule == "R1"


def test_r1_allows_perf_counter():
    source = "import time\nx = time.perf_counter()\n"
    assert _findings(lint_repro.check_wall_clock, source) == []


# -- R2: shared RNG -------------------------------------------------------
def test_r2_flags_module_level_random_calls():
    source = "import random\nx = random.randint(0, 4)\n"
    found = _findings(lint_repro.check_shared_rng, source)
    assert [f.rule for f in found] == ["R2"]
    assert "random.randint" in found[0].message


def test_r2_flags_from_random_import():
    source = "from random import randint\nx = randint(0, 4)\n"
    found = _findings(lint_repro.check_shared_rng, source)
    assert found and found[0].rule == "R2"


def test_r2_allows_seeded_instances():
    source = (
        "import random\n"
        "rng = random.Random(7)\n"
        "x = rng.randint(0, 4)\n"
    )
    assert _findings(lint_repro.check_shared_rng, source) == []


def test_r2_allows_from_random_import_random_class():
    source = "from random import Random\nrng = Random(7)\n"
    assert _findings(lint_repro.check_shared_rng, source) == []


# -- R3: float equality ---------------------------------------------------
@pytest.mark.parametrize(
    "source",
    ["ok = x == 0.5\n", "ok = 1.5 != y\n", "ok = a < b == 0.0\n"],
)
def test_r3_flags_float_literal_equality(source):
    found = _findings(lint_repro.check_float_equality, source)
    assert found and all(f.rule == "R3" for f in found)


@pytest.mark.parametrize(
    "source",
    [
        "ok = x == 0\n",           # int literal is exact
        "ok = x <= 0.5\n",          # ordering against floats is fine
        "ok = abs(x - 0.5) < tol\n",
    ],
)
def test_r3_allows_non_equality_float_use(source):
    assert _findings(lint_repro.check_float_equality, source) == []


# -- R5: raw print in library layers --------------------------------------
def test_r5_flags_bare_print():
    source = "def report(x):\n    print(x)\n"
    found = _findings(lint_repro.check_raw_print, source)
    assert [f.rule for f in found] == ["R5"]
    assert "print()" in found[0].message


def test_r5_flags_print_with_kwargs():
    source = "import sys\nprint('x', file=sys.stderr)\n"
    found = _findings(lint_repro.check_raw_print, source)
    assert found and found[0].rule == "R5"


@pytest.mark.parametrize(
    "source",
    [
        "log = print\n",                    # reference, not a call
        "obj.print()\n",                    # method named print
        "def pr():\n    pass\npr()\n",      # unrelated call
    ],
)
def test_r5_allows_non_print_calls(source):
    assert _findings(lint_repro.check_raw_print, source) == []


# -- R6: static purity -----------------------------------------------------
STATIC_FAKE = pathlib.Path("/root/repo/src/repro/static/fake.py")


@pytest.mark.parametrize(
    "source",
    [
        "import repro.sim\n",
        "import repro.sim.systems\n",
        "import repro.profiling\n",
        "from repro.sim import systems\n",
        "from repro.sim.systems import SystemParams\n",
        "from repro import sim\n",
        "from repro import profiling\n",
        "from ..sim import systems\n",
        "from ..sim.systems import SystemParams\n",
        "from .. import sim\n",
        "from ..profiling import trace\n",
    ],
)
def test_r6_flags_simulator_and_tracer_imports(source):
    found = _findings(lint_repro.check_static_purity, source, STATIC_FAKE)
    assert len(found) == 1
    assert found[0].rule == "R6"
    assert "without executing" in found[0].message


@pytest.mark.parametrize(
    "source",
    [
        "import math\n",
        "from repro.hls.ir import Loop\n",
        "from ..apps.fluid import RELAX\n",
        "from .ir import Extent\n",
        "from . import analyzer\n",
        "from repro import errors\n",
        "import repro.simulator_docs\n",   # prefix, not the package
    ],
)
def test_r6_allows_pure_imports(source):
    assert _findings(lint_repro.check_static_purity, source, STATIC_FAKE) == []


def test_r6_resolves_relative_imports_in_init():
    init = pathlib.Path("/root/repo/src/repro/static/__init__.py")
    found = _findings(
        lint_repro.check_static_purity, "from ..sim import systems\n", init
    )
    assert found and found[0].rule == "R6"
    assert _findings(
        lint_repro.check_static_purity, "from .ir import Extent\n", init
    ) == []


def test_r6_scope_is_static_only():
    src = lint_repro.SRC_ROOT
    assert lint_repro._in_pure_scope(src / "static" / "analyzer.py")
    assert not lint_repro._in_pure_scope(src / "sim" / "systems.py")
    assert not lint_repro._in_pure_scope(src / "cli.py")


def test_r6_static_package_is_clean_on_disk():
    static_root = lint_repro.SRC_ROOT / "static"
    for path in lint_repro._python_files(static_root):
        tree = ast.parse(path.read_text(), filename=str(path))
        assert list(lint_repro.check_static_purity(path, tree)) == []


# -- scoping --------------------------------------------------------------
def test_determinism_scope_is_sim_and_core_only():
    src = lint_repro.SRC_ROOT
    assert lint_repro._in_deterministic_scope(src / "sim" / "systems.py")
    assert lint_repro._in_deterministic_scope(src / "core" / "designer.py")
    assert not lint_repro._in_deterministic_scope(src / "verify" / "generate.py")
    assert not lint_repro._in_deterministic_scope(src / "bench.py")


def test_silent_scope_is_server_and_obs_only():
    src = lint_repro.SRC_ROOT
    assert lint_repro._in_silent_scope(src / "server" / "app.py")
    assert lint_repro._in_silent_scope(src / "obs" / "runtime" / "events.py")
    assert not lint_repro._in_silent_scope(src / "cli.py")
    assert not lint_repro._in_silent_scope(src / "sim" / "systems.py")


# -- R4: schema digest ----------------------------------------------------
def test_r4_round_trip_and_drift(tmp_path, monkeypatch):
    monkeypatch.setattr(lint_repro, "REPO_ROOT", tmp_path)
    mod_dir = tmp_path / "src"
    mod_dir.mkdir()
    mod = mod_dir / "mod.py"
    mod.write_text('doc = {"kind": "demo", "version": 1}\n')
    digest_path = tmp_path / "schema_digest.json"

    schemas = lint_repro.collect_schemas([mod])
    assert schemas == {"src/mod.py": [["kind", "version"]]}
    lint_repro.write_digest(schemas, digest_path)
    recorded = json.loads(digest_path.read_text())
    assert recorded["digest"] == lint_repro.schema_digest(schemas)

    # unchanged tree: no findings
    assert list(lint_repro.check_schema_drift(schemas, digest_path)) == []

    # grow the schema: drift is reported against the changed module
    mod.write_text('doc = {"kind": "demo", "version": 1, "extra": 2}\n')
    drifted = lint_repro.collect_schemas([mod])
    found = list(lint_repro.check_schema_drift(drifted, digest_path))
    assert len(found) == 1
    assert found[0].rule == "R4"
    assert "src/mod.py" in found[0].message


def test_r4_missing_digest_is_a_finding(tmp_path):
    found = list(
        lint_repro.check_schema_drift({}, tmp_path / "missing.json")
    )
    assert len(found) == 1 and found[0].rule == "R4"


def test_r4_dynamic_and_splat_keys_are_stable():
    tree = ast.parse('d = {"kind": k_value, name: 1, **extra}\n')
    dict_node = next(
        node for node in ast.walk(tree) if isinstance(node, ast.Dict)
    )
    assert lint_repro._schema_keys(dict_node) == [
        "<dynamic>", "<splat>", "kind"
    ]


# -- the tree itself ------------------------------------------------------
def test_repo_tree_is_clean():
    assert lint_repro.run_lint() == []


def test_committed_digest_matches_tree():
    schemas = lint_repro.collect_schemas(
        lint_repro._python_files(lint_repro.SRC_ROOT)
    )
    recorded = json.loads(lint_repro.DIGEST_PATH.read_text())
    assert recorded["digest"] == lint_repro.schema_digest(schemas)
