"""Tests for the torus-topology extension."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CommGraph, DesignConfig, KernelSpec, design_interconnect
from repro.core.placement import MeshPlacement, place_on_mesh
from repro.errors import ConfigurationError, DesignError
from repro.sim.engine import Engine
from repro.sim.noc import NocMesh, NocParams
from repro.sim.noc.routing import torus_distance, torus_xy_route, xy_route
from repro.sim.systems import SystemParams, simulate_proposed

THETA = 1.3e-9


class TestTorusRouting:
    def test_wraparound_is_shorter(self):
        # (0,0) -> (3,0) on a 4-wide torus: one hop backwards.
        path = torus_xy_route((0, 0), (3, 0), 4, 4)
        assert path == [((0, 0), (3, 0))]

    def test_forward_when_shorter(self):
        path = torus_xy_route((0, 0), (1, 0), 4, 4)
        assert path == [((0, 0), (1, 0))]

    def test_tie_goes_forward(self):
        # Distance 2 both ways on a 4-ring: forward wins.
        path = torus_xy_route((0, 0), (2, 0), 4, 1)
        assert path[0] == ((0, 0), (1, 0))

    def test_same_node(self):
        assert torus_xy_route((1, 1), (1, 1), 4, 4) == []

    def test_route_length_is_torus_distance(self):
        for src in [(0, 0), (3, 1), (2, 3)]:
            for dst in [(0, 3), (1, 0), (3, 3)]:
                path = torus_xy_route(src, dst, 4, 4)
                assert len(path) == torus_distance(src, dst, 4, 4)

    def test_never_longer_than_mesh(self):
        for src in [(0, 0), (2, 1)]:
            for dst in [(3, 3), (0, 2)]:
                assert len(torus_xy_route(src, dst, 4, 4)) <= len(
                    xy_route(src, dst)
                )

    def test_out_of_range_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            torus_xy_route((5, 0), (0, 0), 4, 4)


@settings(max_examples=80, deadline=None)
@given(
    sx=st.integers(0, 4), sy=st.integers(0, 3),
    dx=st.integers(0, 4), dy=st.integers(0, 3),
)
def test_torus_route_reaches_destination(sx, sy, dx, dy):
    path = torus_xy_route((sx, sy), (dx, dy), 5, 4)
    pos = (sx, sy)
    for a, b in path:
        assert a == pos
        # Neighbours on the torus: differ by 1 (mod size) in one dim.
        ddx = min(abs(a[0] - b[0]), 5 - abs(a[0] - b[0]))
        ddy = min(abs(a[1] - b[1]), 4 - abs(a[1] - b[1]))
        assert ddx + ddy == 1
        pos = b
    assert pos == (dx, dy)
    assert len(path) <= (5 // 2) + (4 // 2)


class TestTorusMesh:
    def test_torus_has_more_links(self):
        mesh = NocMesh(Engine(), NocParams(width=4, height=4))
        torus = NocMesh(Engine(), NocParams(width=4, height=4, topology="torus"))
        assert len(torus.links) > len(mesh.links)
        # 2 directed links per node per dimension on a full torus.
        assert len(torus.links) == 2 * 2 * 16

    def test_wrap_link_transport(self):
        engine = Engine()
        torus = NocMesh(engine, NocParams(width=4, height=1, topology="torus"))

        def proc():
            yield from torus.send((0, 0), (3, 0), 256)

        engine.process(proc())
        engine.run()
        wrap = torus.links[((0, 0), (3, 0))]
        assert wrap.bytes_moved == 256

    def test_torus_faster_for_corner_traffic(self):
        params_m = NocParams(width=4, height=4)
        params_t = NocParams(width=4, height=4, topology="torus")
        mesh = NocMesh(Engine(), params_m)
        torus = NocMesh(Engine(), params_t)
        t_mesh = mesh.transfer_seconds((0, 0), (3, 3), 4096)
        t_torus = torus.transfer_seconds((0, 0), (3, 3), 4096)
        assert t_torus < t_mesh

    def test_no_wrap_links_on_two_wide(self):
        """A 2-ring's wrap link would duplicate the existing one."""
        torus = NocMesh(Engine(), NocParams(width=2, height=1, topology="torus"))
        assert len(torus.links) == 2

    def test_invalid_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            NocParams(width=2, height=2, topology="hypercube")


class TestTorusPlacement:
    def test_distance_wraps(self):
        p = MeshPlacement(4, 1, {"a": (0, 0), "b": (3, 0)}, torus=True)
        assert p.distance("a", "b") == 1
        q = MeshPlacement(4, 1, {"a": (0, 0), "b": (3, 0)}, torus=False)
        assert q.distance("a", "b") == 3

    def test_place_on_torus_never_worse(self):
        nodes = [f"n{i}" for i in range(6)]
        edges = {("n0", "n5"): 10.0, ("n1", "n4"): 5.0, ("n2", "n3"): 1.0}
        mesh_p = place_on_mesh(nodes, edges)
        torus_p = place_on_mesh(nodes, edges, torus=True)
        assert torus_p.weighted_cost(edges) <= mesh_p.weighted_cost(edges)


def fan_graph(n=6):
    """One producer feeding n-1 consumers (stresses placement)."""
    ks = {f"k{i}": KernelSpec(f"k{i}", 10_000.0, 100_000.0) for i in range(n)}
    edges = {(f"k0", f"k{i}"): 20_000 for i in range(1, n)}
    extra = {(f"k{i}", f"k{(i % (n - 1)) + 1}") for i in range(1, n)}
    for p, c in extra:
        if p != c and (p, c) not in edges:
            edges[(p, c)] = 5_000
    return CommGraph(kernels=ks, kk_edges=edges, host_in={"k0": 1_000})


class TestTorusDesign:
    def test_designer_produces_torus_plan(self):
        config = DesignConfig(
            theta_s_per_byte=THETA, stream_overhead_s=0.0, noc_topology="torus"
        )
        plan = design_interconnect("fan", fan_graph(), config)
        assert plan.noc is not None
        assert plan.noc.placement.torus

    def test_invalid_topology_rejected(self):
        with pytest.raises(DesignError):
            DesignConfig(theta_s_per_byte=THETA, noc_topology="ring")

    def test_torus_simulation_runs(self):
        config = DesignConfig(
            theta_s_per_byte=THETA, stream_overhead_s=0.0, noc_topology="torus"
        )
        plan = design_interconnect("fan", fan_graph(), config)
        sim = simulate_proposed(plan, 0.0, SystemParams())
        assert sim.kernels_s > 0
        assert sim.noc_bytes == sum(b for _, _, b in plan.noc.edges)

    def test_torus_roundtrips_through_json(self):
        from repro.io import plan_from_dict, plan_to_dict

        config = DesignConfig(
            theta_s_per_byte=THETA, stream_overhead_s=0.0, noc_topology="torus"
        )
        plan = design_interconnect("fan", fan_graph(), config)
        back = plan_from_dict(plan_to_dict(plan))
        assert back.noc.placement.torus
