"""Tests for the DWARV-like HLS estimator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hls import (
    Block,
    KernelIR,
    Loop,
    Op,
    estimate_kernel,
    estimate_kernel_spec,
)
from repro.hls.estimate import _block_latency, _loop_latency
from repro.hls.latency import OP_LATENCY


def mac_body(loads=2):
    return Block([(Op.LOAD, loads), (Op.MUL, 1), (Op.ADD, 1), (Op.STORE, 1)])


class TestIrValidation:
    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            Block([(Op.ADD, -1)])

    def test_non_op_rejected(self):
        with pytest.raises(ConfigurationError):
            Block([("add", 1)])

    def test_bad_loop_params(self):
        with pytest.raises(ConfigurationError):
            Loop(trip=-1, body=Block())
        with pytest.raises(ConfigurationError):
            Loop(trip=4, body=Block(), ii=0)
        with pytest.raises(ConfigurationError):
            Loop(trip=4, body=Block(), unroll=8)

    def test_kernel_needs_name(self):
        with pytest.raises(ConfigurationError):
            KernelIR("", Block())

    def test_op_totals_expand_loops(self):
        inner = Loop(trip=8, body=Block([(Op.MUL, 2)]))
        outer = Loop(trip=4, body=Block([(Op.ADD, 1)], [inner]))
        top = Block.of_loops(outer)
        assert top.op_total(Op.MUL) == 4 * 8 * 2
        assert top.op_total(Op.ADD) == 4
        assert top.work() == 64 + 4


class TestLatencyModel:
    def test_straightline_sums_latencies(self):
        block = Block([(Op.ADD, 3), (Op.MUL, 2)])
        assert _block_latency(block) == 3 * 1 + 2 * 3

    def test_sequential_loop_multiplies(self):
        loop = Loop(trip=10, body=mac_body())
        body = _block_latency(mac_body())
        assert _loop_latency(loop) == 10 * body

    def test_pipelined_loop_ii(self):
        loop = Loop(trip=100, body=mac_body(loads=1), pipelined=True)
        body = _block_latency(mac_body(loads=1))
        # II=1: one load + one store fit the two BRAM ports: depth + 99.
        assert _loop_latency(loop) == body + 99

    def test_memory_pressure_stretches_ii(self):
        loop = Loop(trip=100, body=mac_body(loads=4), pipelined=True)
        body = _block_latency(mac_body(loads=4))
        # 4 loads + 1 store = 5 mem ops over 2 ports: II = 3.
        assert _loop_latency(loop) == body + 99 * 3

    def test_pipelining_beats_sequential(self):
        seq = Loop(trip=256, body=mac_body())
        pipe = Loop(trip=256, body=mac_body(), pipelined=True)
        assert _loop_latency(pipe) < 0.3 * _loop_latency(seq)

    def test_unroll_halves_trips(self):
        base = Loop(trip=256, body=mac_body())
        unrolled = Loop(trip=256, body=mac_body(), unroll=2)
        # Sequential unroll does not change total work-latency.
        assert _loop_latency(unrolled) == pytest.approx(_loop_latency(base))
        pipe = Loop(trip=256, body=mac_body(loads=1), pipelined=True)
        pipe2 = Loop(trip=256, body=mac_body(loads=1), pipelined=True, unroll=2)
        assert _loop_latency(pipe2) <= _loop_latency(pipe) * 1.1


class TestEstimates:
    def kernel(self, **loop_kw):
        return KernelIR(
            "mac", Block.of_loops(Loop(trip=1024, body=mac_body(), **loop_kw))
        )

    def test_overhead_included(self):
        est = estimate_kernel(self.kernel())
        body = _loop_latency(Loop(trip=1024, body=mac_body()))
        assert est.tau_cycles == 8 + body

    def test_area_grows_with_unroll(self):
        a1 = estimate_kernel(self.kernel()).resources
        a2 = estimate_kernel(self.kernel(unroll=4)).resources
        assert a2.luts > a1.luts

    def test_pipelined_kernel_shows_hw_speedup(self):
        # A wide floating-point body: many ops per iteration at II=1.
        body = Block([
            (Op.FMUL, 4), (Op.FADD, 4), (Op.LOAD, 1), (Op.STORE, 1),
        ])
        ir = KernelIR(
            "wide", Block.of_loops(Loop(trip=4096, body=body, pipelined=True))
        )
        est = estimate_kernel(ir)
        # 100 MHz pipelined datapath issuing 10 ops/cycle vs the 400 MHz
        # host issuing ~1.2: the kernel wins despite the clock handicap.
        assert est.hw_speedup > 1.5

    def test_sequential_kernel_slower_than_host(self):
        est = estimate_kernel(self.kernel())
        # Unpipelined at 100 MHz cannot beat a 400 MHz processor.
        assert est.hw_speedup < 1.0

    def test_spec_packaging(self):
        spec = estimate_kernel_spec(
            self.kernel(pipelined=True),
            parallelizable=True,
            streams_host_io=True,
        )
        assert spec.name == "mac"
        assert spec.parallelizable
        assert spec.streams_host_io
        assert spec.tau_cycles > 0
        assert spec.resources.luts > 0

    def test_division_heavy_kernel_costs_more(self):
        divs = KernelIR(
            "divs", Block.of_loops(Loop(trip=100, body=Block([(Op.FDIV, 1)])))
        )
        adds = KernelIR(
            "adds", Block.of_loops(Loop(trip=100, body=Block([(Op.FADD, 1)])))
        )
        e_div, e_add = estimate_kernel(divs), estimate_kernel(adds)
        assert e_div.tau_cycles > 3 * e_add.tau_cycles
        assert e_div.resources.luts > e_add.resources.luts


@settings(max_examples=60, deadline=None)
@given(
    trip=st.integers(1, 10_000),
    muls=st.integers(0, 8),
    adds=st.integers(0, 8),
    loads=st.integers(0, 6),
)
def test_pipelined_never_slower_than_sequential(trip, muls, adds, loads):
    body = Block([(Op.MUL, muls), (Op.ADD, adds), (Op.LOAD, loads)])
    seq = Loop(trip=trip, body=body)
    pipe = Loop(trip=trip, body=body, pipelined=True)
    assert _loop_latency(pipe) <= _loop_latency(seq) + 1e-9


@settings(max_examples=60, deadline=None)
@given(trip=st.integers(0, 1000), count=st.integers(0, 10))
def test_latency_monotone_in_work(trip, count):
    small = Loop(trip=trip, body=Block([(Op.ADD, count)]))
    big = Loop(trip=trip, body=Block([(Op.ADD, count + 1)]))
    assert _loop_latency(big) >= _loop_latency(small)
