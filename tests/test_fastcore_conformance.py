"""Differential conformance: the fast event kernel vs the reference engine.

The fast backend (:mod:`repro.sim.fastcore`) is only admissible because
it is byte-for-byte indistinguishable from the reference engine. These
tests are that proof, at two scales:

* the four paper applications, across all three simulated systems, with
  full profiling recorders attached;
* a 50-case fixed-seed fuzz corpus (:mod:`repro.verify.generate`) far
  outside the paper's operating regime — torus NoCs, degenerate graphs,
  randomized hardware parameters.

Plus targeted regressions for the one interaction subtle enough to have
produced a real divergence during development: batched ``Event.succeed``
dispatch hiding sibling callbacks from the event queue, which let a
fused operation advance ``now`` mid-batch and serialize flows the
reference engine runs concurrently.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.core.designer import DesignConfig, design_interconnect
from repro.obs.profile.recorder import TimeseriesRecorder
from repro.sim.backend import make_engine
from repro.sim.fastcore.engine import FastEngine
from repro.sim.systems import (
    simulate_baseline,
    simulate_pipelined_baseline,
    simulate_proposed,
)
from repro.sim.timeline import timeline_digest
from repro.verify import (
    FuzzSpec,
    backend_conformance_check,
    conformance_sweep,
    diff_recordings,
    diff_simulated_times,
    generate_case,
)

#: The fuzz corpus is pinned: same seed, same indices, forever. A
#: conformance failure reproduces from ``generate_case(FuzzSpec(),
#: CORPUS_SEED, index)`` alone.
CORPUS_SEED = 2026
CORPUS_SIZE = 50

SYSTEMS = ("baseline", "pipelined", "proposed")


def _simulate(system, graph, plan, params, backend, recorder):
    if system == "baseline":
        return simulate_baseline(graph, 0.0, params, recorder=recorder,
                                 backend=backend)
    if system == "pipelined":
        return simulate_pipelined_baseline(graph, 0.0, params,
                                           recorder=recorder, backend=backend)
    return simulate_proposed(plan, 0.0, params, recorder=recorder,
                             backend=backend)


class TestPaperApps:
    """All four paper applications, all three systems, byte-identical."""

    @pytest.mark.parametrize("system", SYSTEMS)
    def test_app_conformance(self, system, fitted_apps, system_params, theta):
        for name, fitted in fitted_apps.items():
            config = DesignConfig(
                theta_s_per_byte=theta,
                stream_overhead_s=fitted.stream_overhead_s,
            )
            plan = design_interconnect(name, fitted.graph, config)
            rec_ref, rec_fast = TimeseriesRecorder(), TimeseriesRecorder()
            ref = _simulate(system, fitted.graph, plan, system_params,
                            "reference", rec_ref)
            fast = _simulate(system, fitted.graph, plan, system_params,
                             "fast", rec_fast)
            label = f"{name}.{system}"
            violations = diff_simulated_times(label, ref, fast)
            violations += diff_recordings(label, rec_ref, rec_fast)
            assert violations == [], "\n".join(str(v) for v in violations)
            assert timeline_digest(ref) == timeline_digest(fast)

    def test_fast_backend_is_deterministic(self, fitted_apps, system_params):
        # Two fast runs of the same input are byte-identical: the
        # calendar queue and fusion introduce no run-to-run state.
        fitted = fitted_apps["fluid"]
        a = simulate_baseline(fitted.graph, 0.0, system_params, backend="fast")
        b = simulate_baseline(fitted.graph, 0.0, system_params, backend="fast")
        assert repr(asdict(a)) == repr(asdict(b))


class TestFuzzCorpus:
    """Fixed-seed corpus: 50 generated cases, zero tolerated violations."""

    def test_corpus_conformance(self):
        cases = [
            generate_case(FuzzSpec(), CORPUS_SEED, i)
            for i in range(CORPUS_SIZE)
        ]
        failures = []

        def on_case(case, found):
            if found:
                failures.append((case.label(), found[0]))

        violations = conformance_sweep(cases, on_case=on_case)
        assert violations == [], (
            f"{len(failures)} non-conforming case(s); first: "
            f"{failures[0][0]}: {failures[0][1]}"
        )

    def test_single_case_check_reports_counterexamples(self):
        # The checker itself must produce actionable reports: a case
        # runs clean, and its violation list is the proof artifact.
        case = generate_case(FuzzSpec(), CORPUS_SEED, 0)
        assert backend_conformance_check(case) == []


class TestBatchedDispatchFusion:
    """Regressions for Event.succeed's batched dispatch on FastEngine.

    Multiple callbacks on one event are dispatched by a single queued
    closure. Mid-batch, pending sibling callbacks are due *now* but
    invisible to the queue — fusion must refuse exactly as the
    reference engine's ``peek == now`` would.
    """

    def test_fusion_vetoed_while_siblings_pending(self):
        eng = FastEngine()
        ev = eng.event()
        observed = []

        def waiter(tag):
            def cb(_event):
                # can_advance must be False for every callback except
                # the last: siblings still inside the dispatch closure
                # correspond to same-time queued thunks in the
                # reference engine.
                observed.append((tag, eng.can_advance(1.0)))
            return cb

        for tag in ("a", "b", "c"):
            ev.callbacks.append(waiter(tag))
        ev.succeed()
        eng.run()
        assert observed == [("a", False), ("b", False), ("c", True)]

    def test_callback_order_preserved(self):
        eng = FastEngine()
        ev = eng.event()
        order = []
        for tag in range(5):
            ev.callbacks.append(lambda _e, t=tag: order.append(t))
        ev.succeed()
        eng.run()
        assert order == [0, 1, 2, 3, 4]

    def test_wide_fanin_schedules_one_closure(self):
        # The historical Event.succeed queued one thunk per callback,
        # bloating the queue under wide AllOf fan-in; now the whole
        # batch is one queued dispatch closure — on both engines.
        from repro.sim.engine import Engine

        for eng in (Engine(), FastEngine()):
            ev = eng.event()
            fired = []
            for i in range(50):
                ev.callbacks.append(lambda _e, i=i: fired.append(i))
            ev.succeed()
            queued = len(eng._queue) if type(eng) is Engine else len(eng._cq)
            assert queued == 1
            eng.run()
            assert fired == list(range(50))

    def test_batch_guard_clears_after_dispatch(self):
        eng = FastEngine()
        ev = eng.event()
        ev.callbacks.append(lambda _e: None)
        ev.succeed()
        eng.run()
        assert eng._batch_remaining == 0
        # Fusion works again once the batch is fully dispatched.
        assert eng.try_advance(1.0)
        assert eng.now == 1.0

    def test_reference_engine_never_fuses(self):
        eng = make_engine("reference")
        assert eng.fastlane is False
        assert eng.can_advance(0.0) is False
        assert eng.try_advance(1.0) is False
        assert eng.now == 0.0


class TestEquivalenceContractScope:
    """Engine-implementation counters stay outside the contract."""

    def test_fused_operations_skip_the_queue(self):
        # The optimization is visible only on the engine object: a
        # fused operation bumps fused_events, never events_processed.
        eng = FastEngine()
        assert eng.try_advance(1.0)
        assert eng.fused_events == 1
        assert eng.events_processed == 0
        assert eng.now == 1.0

    def test_make_engine_returns_the_right_class(self):
        assert isinstance(make_engine("fast"), FastEngine)
        ref = make_engine("reference")
        assert not isinstance(ref, FastEngine)
        assert ref.fastlane is False
