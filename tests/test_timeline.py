"""Tests for the simulation timeline/Gantt rendering."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.timeline import overlap_fraction, render_comparison, render_gantt


class TestRenderGantt:
    def test_basic_rendering(self):
        text = render_gantt({"a": (0.0, 0.5), "b": (0.5, 1.0)}, width=20)
        lines = text.splitlines()
        assert lines[0].startswith("a |")
        assert "#" in lines[0]
        assert "ms" in lines[-1]

    def test_rows_sorted_by_start(self):
        text = render_gantt({"late": (0.6, 1.0), "early": (0.0, 0.4)})
        assert text.index("early") < text.index("late")

    def test_bar_positions_proportional(self):
        text = render_gantt({"a": (0.0, 0.5), "b": (0.5, 1.0)}, width=20)
        a_bar = text.splitlines()[0].split("|")[1]
        b_bar = text.splitlines()[1].split("|")[1]
        assert a_bar.strip("#") == " " * 10  # first half filled
        assert b_bar.strip() == "#" * 10  # second half filled

    def test_tiny_span_still_visible(self):
        text = render_gantt({"blip": (0.5, 0.5000001), "big": (0.0, 1.0)})
        blip_row = next(l for l in text.splitlines() if l.startswith("blip"))
        assert "#" in blip_row

    def test_empty(self):
        assert render_gantt({}) == "(no spans)"

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            render_gantt({"a": (1.0, 0.5)})
        with pytest.raises(ConfigurationError):
            render_gantt({"a": (0.0, 1.0)}, width=5)
        with pytest.raises(ConfigurationError):
            render_gantt({"a": (0.0, 0.0)})


class TestOverlapFraction:
    def test_sequential_is_zero(self):
        assert overlap_fraction({"a": (0, 1), "b": (1, 2)}) == 0.0

    def test_identical_spans_fully_overlapped(self):
        assert overlap_fraction({"a": (0, 1), "b": (0, 1)}) == pytest.approx(1.0)

    def test_partial_overlap(self):
        # a: [0,2), b: [1,3): 2 of 4 busy units are in the overlap window.
        frac = overlap_fraction({"a": (0, 2), "b": (1, 3)})
        assert frac == pytest.approx(0.5)

    def test_empty(self):
        assert overlap_fraction({}) == 0.0


class TestSimulatedTimelines:
    def test_baseline_spans_sequential(self, all_results):
        base = all_results["jpeg"].sim_baseline
        assert base.kernel_spans
        assert overlap_fraction(base.kernel_spans) == 0.0

    def test_proposed_spans_overlap_for_duplicated_apps(self, all_results):
        prop = all_results["jpeg"].sim_proposed
        # The two huff_ac_dec copies run concurrently.
        assert overlap_fraction(prop.kernel_spans) > 0.1

    def test_comparison_renders_both(self, all_results):
        r = all_results["jpeg"]
        text = render_comparison(r.sim_baseline, r.sim_proposed)
        assert "baseline (makespan" in text
        assert "proposed (makespan" in text
        assert "huff_ac_dec#0" in text

    def test_all_kernels_have_spans(self, all_results):
        for r in all_results.values():
            expected = set(r.plan.graph.kernel_names())
            assert set(r.sim_proposed.kernel_spans) == expected


class TestZeroLengthSpans:
    def test_zero_length_span_renders_tick_not_bar(self):
        text = render_gantt({"blip": (0.5, 0.5), "big": (0.0, 1.0)}, width=20)
        blip_row = next(l for l in text.splitlines() if l.startswith("blip"))
        bar = blip_row.split("|", 1)[1].rsplit("|", 1)[0]
        assert "#" not in bar
        assert bar.count("|") == 1
        assert bar.index("|") == 10  # at the midpoint, not the origin

    def test_zero_length_span_at_horizon_stays_inside_chart(self):
        # Before the fix this rendered a phantom one-cell bar as if time
        # had been spent before the end of the chart.
        text = render_gantt({"end": (1.0, 1.0), "big": (0.0, 1.0)}, width=20)
        end_row = next(l for l in text.splitlines() if l.startswith("end"))
        bar = end_row.split("|", 1)[1].rsplit("|", 1)[0]
        assert len(bar) == 20
        assert bar[-1] == "|" and "#" not in bar

    def test_all_zero_spans_without_horizon_still_rejected(self):
        with pytest.raises(ConfigurationError):
            render_gantt({"a": (0.0, 0.0)})


class TestUtilizationLanes:
    def test_glyph_ramp_extremes(self):
        from repro.sim.timeline import UTIL_RAMP, render_utilization_lanes

        text = render_utilization_lanes({"plb": [0.0, 1.0]})
        bar = text.split("|", 1)[1].rsplit("|", 1)[0]
        assert bar[0] == " "  # idle bucket is blank
        assert bar[1] == UTIL_RAMP[-1]  # saturated bucket is the top glyph

    def test_tiny_nonzero_fraction_visible(self):
        from repro.sim.timeline import render_utilization_lanes

        text = render_utilization_lanes({"plb": [1e-9, 0.0]})
        bar = text.split("|", 1)[1].rsplit("|", 1)[0]
        assert bar[0] != " "

    def test_time_scale_footer(self):
        from repro.sim.timeline import render_utilization_lanes

        text = render_utilization_lanes({"plb": [0.5] * 16}, horizon_s=0.001)
        assert text.splitlines()[-1].strip().startswith("0")
        assert "ms" in text.splitlines()[-1]

    def test_mismatched_bucket_counts_rejected(self):
        from repro.sim.timeline import render_utilization_lanes

        with pytest.raises(ConfigurationError):
            render_utilization_lanes({"a": [0.5], "b": [0.5, 0.5]})

    def test_empty(self):
        from repro.sim.timeline import render_utilization_lanes

        assert render_utilization_lanes({}) == "(no lanes)"
