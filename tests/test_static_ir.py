"""Unit tests for the access-pattern IR (repro.static.ir)."""

import pytest

from repro.errors import ConfigurationError
from repro.hls.ir import Block, Loop, Op
from repro.static.ir import (
    Access,
    BufferDecl,
    Extent,
    Repeat,
    Step,
    TaskGraph,
    load,
    repeat,
    step,
    store,
)


# -- Extent ---------------------------------------------------------------
def test_extent_exactly_is_exact():
    e = Extent.exactly(64)
    assert e.exact
    assert (e.lo, e.nominal, e.hi) == (64, 64, 64)
    assert e.contains(64) and not e.contains(63)


def test_extent_bounded_contains_its_interval():
    e = Extent.bounded(12, 396, 72)
    assert not e.exact
    assert e.contains(12) and e.contains(396) and e.contains(67)
    assert not e.contains(11) and not e.contains(397)


@pytest.mark.parametrize(
    "lo,hi,nominal",
    [(-1, 4, 2), (5, 4, 5), (0, 4, 5), (3, 4, 2)],
)
def test_extent_rejects_unordered_bounds(lo, hi, nominal):
    with pytest.raises(ConfigurationError):
        Extent(lo, hi, nominal)


def test_extent_add_and_scale_are_interval_arithmetic():
    a = Extent.bounded(1, 5, 2)
    b = Extent.exactly(10)
    s = a + b
    assert (s.lo, s.nominal, s.hi) == (11, 12, 15)
    t = a.scaled(3)
    assert (t.lo, t.nominal, t.hi) == (3, 6, 15)
    with pytest.raises(ConfigurationError):
        a.scaled(-1)


# -- BufferDecl -----------------------------------------------------------
def test_dense_buffer_is_loop_bounds_times_element_size():
    b = BufferDecl.dense("img", (96, 96), 4)
    assert b.size == Extent.exactly(96 * 96 * 4)


@pytest.mark.parametrize("shape", [(), (0,), (4, -1)])
def test_dense_buffer_rejects_bad_shapes(shape):
    with pytest.raises(ConfigurationError):
        BufferDecl.dense("img", shape, 4)


def test_dense_buffer_rejects_bad_element_size():
    with pytest.raises(ConfigurationError):
        BufferDecl.dense("img", (4,), 0)


def test_dynamic_buffer_carries_bounds():
    b = BufferDecl.dynamic("stream", 12, 396, 72)
    assert not b.size.exact
    assert b.size == Extent.bounded(12, 396, 72)


def test_buffer_rejects_empty_name_and_zero_size():
    with pytest.raises(ConfigurationError):
        BufferDecl("", Extent.exactly(4))
    with pytest.raises(ConfigurationError):
        BufferDecl("b", Extent.exactly(0))


# -- Access ---------------------------------------------------------------
def test_access_whole_buffer_defaults():
    a = load("img")
    assert a.nbytes is None and a.offset == 0


def test_access_rejects_offset_on_whole_buffer():
    with pytest.raises(ConfigurationError):
        load("img", None, 8)


def test_access_rejects_nonpositive_partial_range():
    with pytest.raises(ConfigurationError):
        store("img", 0)
    with pytest.raises(ConfigurationError):
        Access("img", load("x").mode, 4, -1)


# -- step / work ----------------------------------------------------------
def test_step_accepts_hls_loop_nest_as_work():
    nest = Loop(trip=16, body=Block([(Op.FMUL, 25)]))
    s = step("gaussian", load("img"), store("out"), work=nest)
    assert s.work == float(16 * 25)
    assert s.work == float(Block.of_loops(nest).work())


def test_step_accepts_plain_numbers_as_work():
    assert step("k", work=42).work == 42.0
    assert step("k", work=1.5).work == 1.5


def test_step_rejects_negative_work_and_empty_context():
    with pytest.raises(ConfigurationError):
        Step("k", (), -1.0)
    with pytest.raises(ConfigurationError):
        step("", load("img"))


# -- repeat ---------------------------------------------------------------
def test_repeat_rejects_bad_count_and_empty_body():
    with pytest.raises(ConfigurationError):
        repeat(0, step("k"))
    with pytest.raises(ConfigurationError):
        Repeat(2, ())


# -- TaskGraph ------------------------------------------------------------
def _graph(**kwargs):
    defaults = dict(
        app="demo",
        buffers=(
            BufferDecl.dense("a", (16,), 4),
            BufferDecl.dense("b", (16,), 4),
        ),
        kernels=("k1",),
        nodes=(
            step("host_in", store("a")),
            step("k1", load("a"), store("b"), work=10),
        ),
    )
    defaults.update(kwargs)
    return TaskGraph(**defaults)


def test_task_graph_accepts_a_valid_description():
    g = _graph()
    assert [s.context for s in g.flatten()] == ["host_in", "k1"]
    assert g.buffer("a").size == Extent.exactly(64)
    with pytest.raises(ConfigurationError):
        g.buffer("missing")


def test_task_graph_rejects_duplicate_buffers():
    with pytest.raises(ConfigurationError):
        _graph(buffers=(
            BufferDecl.dense("a", (16,), 4),
            BufferDecl.dense("a", (16,), 4),
        ))


def test_task_graph_rejects_duplicate_and_missing_kernels():
    with pytest.raises(ConfigurationError):
        _graph(kernels=("k1", "k1"))
    with pytest.raises(ConfigurationError):
        _graph(kernels=("k1", "ghost"))


def test_task_graph_rejects_undeclared_buffer_access():
    with pytest.raises(ConfigurationError):
        _graph(nodes=(
            step("host_in", store("a")),
            step("k1", load("zzz"), store("b"), work=10),
        ))


def test_task_graph_rejects_partial_access_to_dynamic_buffer():
    with pytest.raises(ConfigurationError):
        _graph(
            buffers=(
                BufferDecl.dynamic("a", 1, 64, 8),
                BufferDecl.dense("b", (16,), 4),
            ),
            nodes=(
                step("host_in", store("a")),
                step("k1", load("a", 8), store("b"), work=10),
            ),
        )


def test_task_graph_rejects_range_overflow():
    with pytest.raises(ConfigurationError):
        _graph(nodes=(
            step("host_in", store("a")),
            step("k1", load("a", 32, 48), store("b"), work=10),
        ))


def test_flatten_unrolls_nested_repeats():
    g = _graph(nodes=(
        step("host_in", store("a")),
        repeat(2, step("k1", load("a"), store("b"), work=1),
               repeat(2, step("host_mid"))),
    ))
    names = [s.context for s in g.flatten()]
    assert names == [
        "host_in",
        "k1", "host_mid", "host_mid",
        "k1", "host_mid", "host_mid",
    ]
