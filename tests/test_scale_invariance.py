"""Scale robustness: design decisions must not depend on input size.

The interconnect is synthesized once and then used for every input the
application ever processes, so the *structure* the designer derives —
which pairs share memory, who sits on the NoC, which kernel is
duplicated — must be identical whether the profile came from a small or
a large input. (Byte volumes scale; decisions must not.)
"""

from __future__ import annotations

import pytest

from repro.apps import fit_application, get_application
from repro.apps.registry import APP_NAMES
from repro.core import DesignConfig, design_interconnect
from repro.sim.systems import SystemParams

THETA = SystemParams().theta_s_per_byte()


def plan_at_scale(name: str, scale: int):
    fitted = fit_application(get_application(name, scale=scale), THETA)
    config = DesignConfig(
        theta_s_per_byte=THETA, stream_overhead_s=fitted.stream_overhead_s
    )
    return fitted, design_interconnect(name, fitted.graph, config)


@pytest.mark.parametrize("name", APP_NAMES)
class TestScaleInvariance:
    def test_solution_label_stable(self, name):
        _, p1 = plan_at_scale(name, 1)
        _, p2 = plan_at_scale(name, 2)
        assert p1.solution_label() == p2.solution_label()

    def test_sharing_pairs_stable(self, name):
        _, p1 = plan_at_scale(name, 1)
        _, p2 = plan_at_scale(name, 2)
        assert {(l.producer, l.consumer) for l in p1.sharing} == {
            (l.producer, l.consumer) for l in p2.sharing
        }

    def test_noc_membership_stable(self, name):
        _, p1 = plan_at_scale(name, 1)
        _, p2 = plan_at_scale(name, 2)
        k1 = set(p1.noc.kernel_nodes) if p1.noc else set()
        k2 = set(p2.noc.kernel_nodes) if p2.noc else set()
        assert k1 == k2
        m1 = set(p1.noc.memory_nodes) if p1.noc else set()
        m2 = set(p2.noc.memory_nodes) if p2.noc else set()
        assert m1 == m2

    def test_duplication_choice_stable(self, name):
        _, p1 = plan_at_scale(name, 1)
        _, p2 = plan_at_scale(name, 2)
        assert [d.kernel for d in p1.duplications if d.applied] == [
            d.kernel for d in p2.duplications if d.applied
        ]

    def test_traffic_grows_with_scale(self, name):
        f1, _ = plan_at_scale(name, 1)
        f2, _ = plan_at_scale(name, 2)
        assert f2.graph.total_kernel_traffic() > 1.5 * f1.graph.total_kernel_traffic()

    def test_calibrated_ratio_unchanged(self, name):
        """Calibration targets hold at any scale (ratios, not volumes)."""
        from repro.core.analytic import AnalyticModel

        f2, _ = plan_at_scale(name, 2)
        model = AnalyticModel(f2.graph, THETA, f2.host_other_s)
        from repro.apps.calibration import TARGETS

        assert model.baseline().comm_comp_ratio == pytest.approx(
            TARGETS[name].comm_comp_ratio, rel=1e-6
        )


class TestSeedRobustness:
    @pytest.mark.parametrize("name", APP_NAMES)
    def test_different_seed_same_structure(self, name):
        """Random input data must not change the design either."""
        f_a = fit_application(get_application(name, seed=2014), THETA)
        f_b = fit_application(get_application(name, seed=999), THETA)
        config_a = DesignConfig(
            theta_s_per_byte=THETA, stream_overhead_s=f_a.stream_overhead_s
        )
        config_b = DesignConfig(
            theta_s_per_byte=THETA, stream_overhead_s=f_b.stream_overhead_s
        )
        p_a = design_interconnect(name, f_a.graph, config_a)
        p_b = design_interconnect(name, f_b.graph, config_b)
        assert p_a.solution_label() == p_b.solution_label()
        assert {(l.producer, l.consumer) for l in p_a.sharing} == {
            (l.producer, l.consumer) for l in p_b.sharing
        }
