"""Tests for the repro.verify fuzzing + differential oracle subsystem."""

from __future__ import annotations

import json

import pytest

from repro.core.designer import design_interconnect
from repro.errors import ConfigurationError
from repro.io import canonical_json
from repro.verify import (
    FuzzJob,
    FuzzSpec,
    GeneratedCase,
    Violation,
    case_size,
    check_plan,
    differential_check,
    evaluate_case,
    failing_checks,
    generate_case,
    metamorphic_checks,
    run_fuzz,
    run_fuzz_job,
    shrink_case,
)

SPEC = FuzzSpec()


def design(case: GeneratedCase):
    return design_interconnect(case.label(), case.graph, case.config())


class TestGenerator:
    def test_deterministic_across_calls(self):
        a = generate_case(SPEC, 5, 3)
        b = generate_case(SPEC, 5, 3)
        assert canonical_json(a.to_dict()) == canonical_json(b.to_dict())

    def test_distinct_cases_per_index(self):
        docs = {
            canonical_json(generate_case(SPEC, 5, i).to_dict())
            for i in range(20)
        }
        assert len(docs) == 20

    def test_graphs_are_valid_and_in_spec(self):
        for i in range(30):
            case = generate_case(SPEC, 1, i)
            g = case.graph
            n = len(g.kernel_names())
            assert SPEC.min_kernels <= n <= SPEC.max_kernels
            # Distinct taus and edge bytes keep ordering name-independent
            # (the permutation metamorphic check relies on this).
            taus = [g.kernel(k).tau_cycles for k in g.kernel_names()]
            assert len(set(taus)) == n
            volumes = list(g.kk_edges.values())
            assert len(set(volumes)) == len(volumes)
            assert g.total_kernel_traffic() > 0 or g.host_in or g.host_out

    def test_roundtrips_through_dict(self):
        case = generate_case(SPEC, 2, 0)
        again = GeneratedCase.from_dict(json.loads(json.dumps(case.to_dict())))
        assert canonical_json(again.to_dict()) == canonical_json(case.to_dict())

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            FuzzSpec(min_kernels=5, max_kernels=2)
        with pytest.raises(ConfigurationError):
            FuzzSpec(edge_density=1.5)
        with pytest.raises(ConfigurationError):
            FuzzSpec(volume_distribution="normal")

    @pytest.mark.parametrize("dist", ("uniform", "log_uniform", "heavy_tail"))
    def test_all_distributions_generate(self, dist):
        spec = FuzzSpec(volume_distribution=dist)
        case = generate_case(spec, 0, 0)
        assert all(b >= 1 for b in case.graph.kk_edges.values())


class TestInvariants:
    def test_clean_designs_pass(self):
        for i in range(15):
            case = generate_case(SPEC, 13, i)
            assert check_plan(case.graph, case.config(), design(case)) == []

    def test_tampered_sharing_bytes_detected(self):
        from dataclasses import replace

        for i in range(40):
            case = generate_case(SPEC, 13, i)
            plan = design(case)
            if not plan.sharing:
                continue
            link = plan.sharing[0]
            bad = replace(
                plan, sharing=(replace(link, bytes=link.bytes + 1),)
                + plan.sharing[1:]
            )
            checks = {
                v.check for v in check_plan(case.graph, case.config(), bad)
            }
            assert "sharing_precondition" in checks
            return
        pytest.skip("no generated case produced a sharing link")

    def test_dropped_provenance_detected(self):
        from dataclasses import replace

        case = generate_case(SPEC, 13, 0)
        plan = design(case)
        bad = replace(plan, provenance=plan.provenance[:-1])
        checks = {v.check for v in check_plan(case.graph, case.config(), bad)}
        assert "provenance" in checks

    def test_violation_serialization(self):
        v = Violation("sharing_precondition", "fuzz[0:0]", "boom")
        assert v.as_dict() == {
            "check": "sharing_precondition",
            "subject": "fuzz[0:0]",
            "message": "boom",
        }
        assert "sharing_precondition" in str(v)


class TestOracle:
    def test_differential_passes_on_clean_designs(self):
        for i in range(10):
            case = generate_case(SPEC, 21, i)
            assert differential_check(case, design(case)) == []

    def test_metamorphic_pass_on_clean_designs(self):
        for i in range(10):
            case = generate_case(SPEC, 21, i)
            assert metamorphic_checks(case) == []

    def test_slowed_simulator_detected(self, monkeypatch):
        """A 3x-slower 'simulator' must trip the differential bounds."""
        import repro.verify.oracle as oracle
        from repro.sim.systems import simulate_baseline

        real = simulate_baseline

        def slowed(graph, host_other_s, params, **kwargs):
            times = real(graph, host_other_s, params, **kwargs)
            object.__setattr__(times, "kernels_s", times.kernels_s * 3)
            return times

        monkeypatch.setattr(oracle, "simulate_baseline", slowed)
        case = generate_case(SPEC, 21, 0)
        checks = {v.check for v in differential_check(case, design(case))}
        assert "baseline_sim_exact" in checks
        assert "baseline_differential" in checks


class TestShrinker:
    def test_passing_case_is_returned_unchanged(self):
        case = generate_case(SPEC, 4, 0)
        result = shrink_case(case, lambda c: set())
        assert result.case is case
        assert result.steps == ()

    def test_minimizes_while_preserving_failure(self):
        case = generate_case(SPEC, 4, 1)

        def fails_if_multi_kernel(c: GeneratedCase):
            return {"toy"} if len(c.graph.kernel_names()) >= 2 else set()

        result = shrink_case(case, fails_if_multi_kernel)
        assert result.failing == ("toy",)
        assert len(result.case.graph.kernel_names()) == 2
        assert case_size(result.case) < case_size(case)
        assert result.steps

    def test_respects_budget(self):
        case = generate_case(SPEC, 4, 2)
        result = shrink_case(case, lambda c: {"toy"}, budget=10)
        assert result.evaluations <= 10


class TestHarness:
    def test_fuzz_job_fingerprint_identity(self):
        a = FuzzJob(SPEC, 7, 3)
        assert a.fingerprint() == FuzzJob(SPEC, 7, 3).fingerprint()
        assert a.fingerprint() != FuzzJob(SPEC, 7, 4).fingerprint()
        assert a.fingerprint() != FuzzJob(SPEC, 8, 3).fingerprint()
        assert (
            a.fingerprint()
            != FuzzJob(FuzzSpec(max_kernels=4), 7, 3).fingerprint()
        )
        assert a.app == "fuzz[7:3]"

    def test_run_fuzz_job_verdict_shape(self):
        summary = run_fuzz_job(FuzzJob(SPEC, 7, 0))
        assert summary["failed"] is False
        assert summary["violations"] == []
        json.dumps(summary)  # must be JSON-safe for the cache/pool

    def test_campaign_all_green(self):
        report = run_fuzz(spec=SPEC, seed=7, cases=12)
        assert report.ok
        assert report.passed == 12
        assert report.check_counts() == {}
        doc = report.to_dict()
        assert doc["kind"] == "fuzz-report"
        assert doc["failed"] == 0
        json.dumps(doc)
        assert "passed=12" in report.render()

    def test_campaign_reports_are_deterministic(self):
        a = run_fuzz(spec=SPEC, seed=3, cases=8).to_dict()
        b = run_fuzz(spec=SPEC, seed=3, cases=8).to_dict()
        assert canonical_json(a) == canonical_json(b)

    def test_campaign_uses_service_cache(self):
        from repro.service import DesignService

        service = DesignService(runner=run_fuzz_job)
        run_fuzz(spec=SPEC, seed=5, cases=6, service=service)
        report = run_fuzz(spec=SPEC, seed=5, cases=6, service=service)
        assert report.cached == 6
        assert service.metrics.snapshot()["counters"]["fuzz_cases"] == 12

    def test_mutation_sanity_broken_sharing_precondition(self, monkeypatch):
        """Acceptance criterion: breaking the sharing precondition in the
        production code makes the harness report a minimal shrunk
        counterexample (the checker re-derives the precondition from the
        graph arithmetic, so it cannot be fooled by the same patch)."""
        import repro.core.sharing as sharing

        monkeypatch.setattr(
            sharing,
            "is_exclusive_pair",
            lambda graph, producer, consumer: graph.edge_bytes(
                producer, consumer
            ) > 0,
        )
        report = run_fuzz(spec=SPEC, seed=7, cases=20, jobs=1, shrink=True)
        assert not report.ok
        assert "sharing_precondition" in report.check_counts()

        failure = report.failures[0]
        assert failure.shrunk is not None
        shrunk_graph = failure.shrunk["graph"]
        # Minimal witness: strictly smaller than the raw counterexample,
        # and small in absolute terms (a non-exclusive pair needs at
        # most 3 kernels / 2 edges).
        assert case_size(GeneratedCase.from_dict(failure.shrunk)) < case_size(
            GeneratedCase.from_dict(failure.case)
        )
        assert len(shrunk_graph["kernels"]) <= 3
        assert len(shrunk_graph["kk_edges"]) <= 2
        assert failure.shrink_steps
        # The witness itself still fails the same check when replayed
        # under the mutation — the seed-reproduction recipe works.
        replay = GeneratedCase.from_dict(failure.shrunk)
        assert "sharing_precondition" in failing_checks(replay)

    def test_evaluate_case_reports_designer_errors(self, monkeypatch):
        import repro.verify.harness as harness

        def explode(*args, **kwargs):
            raise ConfigurationError("injected")

        monkeypatch.setattr(harness, "design_interconnect", explode)
        case = generate_case(SPEC, 0, 0)
        violations = evaluate_case(case)
        assert [v.check for v in violations] == ["designer_error"]


class TestFuzzCli:
    def test_green_run_exit_zero_and_report(self, tmp_path, capsys):
        from repro.cli import main

        report_path = tmp_path / "fuzz.json"
        code = main([
            "fuzz", "--seed", "7", "--cases", "6",
            "--report", str(report_path),
        ])
        assert code == 0
        doc = json.loads(report_path.read_text())
        assert doc["kind"] == "fuzz-report"
        assert doc["passed"] == 6
        out = capsys.readouterr().out
        assert "passed=6" in out

    def test_red_run_exit_one(self, tmp_path, monkeypatch, capsys):
        import repro.core.sharing as sharing
        from repro.cli import main

        monkeypatch.setattr(
            sharing,
            "is_exclusive_pair",
            lambda graph, producer, consumer: graph.edge_bytes(
                producer, consumer
            ) > 0,
        )
        report_path = tmp_path / "fuzz.json"
        code = main([
            "fuzz", "--seed", "7", "--cases", "8", "--shrink",
            "--report", str(report_path),
        ])
        assert code == 1
        doc = json.loads(report_path.read_text())
        assert doc["failed"] > 0
        assert "sharing_precondition" in doc["check_counts"]
        assert doc["failures"][0]["shrunk"] is not None
