"""Tests of the observability layer: tracing, provenance, exporters.

The two guarantees under test, beyond per-class behavior:

* **determinism** — two same-seed experiments produce identical
  provenance sequences (no clocks/pids leak into design decisions), and
  golden digests/summaries are untouched by tracing;
* **zero-cost off switch** — the :data:`~repro.obs.trace.NULL_TRACER`
  records nothing and the default path never allocates spans.
"""

from __future__ import annotations

import json

import pytest

from repro.apps.registry import APP_NAMES
from repro.cli import main
from repro.errors import ConfigurationError
from repro.flow import result_summary, run_experiment
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    SpanEvent,
    Tracer,
    active,
    render_provenance,
    timed,
    to_json_snapshot,
    to_prometheus,
    write_metrics,
)
from repro.service.metrics import MetricsRegistry, percentile
from repro.sim.stats import collect_stats, publish_stats
from repro.sim.systems import simulate_proposed


class TestTracer:
    def test_span_records_complete_event(self):
        t = Tracer()
        with t.span("work", category="test", app="jpeg"):
            pass
        (ev,) = t.events
        assert ev.name == "work"
        assert ev.phase == "X"
        assert ev.category == "test"
        assert ev.args == {"app": "jpeg"}
        assert ev.duration_us >= 0.0

    def test_nested_spans_keep_record_order(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        names = [e.name for e in t.events]
        # Inner closes first, so it is recorded first.
        assert names == ["inner", "outer"]
        assert [e.seq for e in t.events] == [0, 1]

    def test_span_recorded_even_on_exception(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("doomed"):
                raise ValueError("boom")
        assert [e.name for e in t.events] == ["doomed"]

    def test_instant_marker(self):
        t = Tracer()
        t.instant("tick", detail=1)
        (ev,) = t.events
        assert ev.phase == "i"
        assert ev.duration_us == 0.0

    def test_chrome_trace_document_shape(self):
        t = Tracer()
        with t.span("a"):
            pass
        t.instant("b")
        doc = t.to_chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        complete, instant = doc["traceEvents"]
        assert complete["ph"] == "X" and "dur" in complete
        assert instant["ph"] == "i" and instant["s"] == "t"
        for ev in doc["traceEvents"]:
            assert {"name", "cat", "ts", "pid", "tid"} <= set(ev)
        json.dumps(doc)  # must be serializable as-is

    def test_jsonl_round_trip(self):
        t = Tracer()
        with t.span("x", k="v"):
            pass
        lines = t.to_jsonl().splitlines()
        assert len(lines) == 1
        restored = SpanEvent.from_dict(json.loads(lines[0]))
        assert restored.name == "x"
        assert restored.args == {"k": "v"}

    def test_write_files(self, tmp_path):
        t = Tracer()
        with t.span("x"):
            pass
        chrome = t.write_chrome_trace(tmp_path / "trace.json")
        jsonl = t.write_jsonl(tmp_path / "trace.jsonl")
        assert json.loads(chrome.read_text())["traceEvents"]
        assert json.loads(jsonl.read_text().splitlines()[0])["name"] == "x"

    def test_merge_preserves_worker_identity_and_reseqs(self):
        worker = Tracer()
        with worker.span("remote"):
            pass
        local = Tracer()
        with local.span("local"):
            pass
        merged = local.merge(worker.as_dicts())
        assert merged == 1
        assert [e.seq for e in local.events] == [0, 1]
        remote = local.events[1]
        assert remote.name == "remote"
        assert remote.pid == worker.events[0].pid


class TestNullTracer:
    def test_records_nothing(self):
        with NULL_TRACER.span("anything", key="value"):
            NULL_TRACER.instant("marker")
        assert NULL_TRACER.events == ()
        assert NULL_TRACER.merge([{"name": "x"}]) == 0
        assert not NULL_TRACER.enabled

    def test_span_context_is_shared_not_allocated(self):
        n = NullTracer()
        assert n.span("a") is n.span("b")

    def test_active_normalizes_none(self):
        assert active(None) is NULL_TRACER
        t = Tracer()
        assert active(t) is t


class TestDeterminism:
    def test_same_seed_runs_identical_provenance(self):
        a = run_experiment("jpeg", simulate=False)
        b = run_experiment("jpeg", simulate=False)
        assert [e.as_dict() for e in a.plan.provenance] == [
            e.as_dict() for e in b.plan.provenance
        ]
        assert len(a.plan.provenance) > 0

    def test_tracing_does_not_perturb_results(self):
        t = Tracer()
        traced = run_experiment("canny", simulate=False, trace=t)
        plain = run_experiment("canny", simulate=False)
        assert result_summary(traced) == result_summary(plain)
        assert [e.as_dict() for e in traced.plan.provenance] == [
            e.as_dict() for e in plain.plan.provenance
        ]
        assert len(t.events) > 0

    def test_null_tracer_run_adds_zero_span_events(self):
        n = NullTracer()
        run_experiment("canny", simulate=False, trace=n)
        assert n.events == ()

    def test_provenance_excluded_from_plan_equality(self, jpeg_result):
        plan = jpeg_result.plan
        import dataclasses

        stripped = dataclasses.replace(plan, provenance=())
        assert stripped == plan


class TestProvenanceContent:
    def test_every_stage_represented(self, jpeg_result):
        stages = {e.stage for e in jpeg_result.plan.provenance}
        assert {
            "config", "select", "duplication", "sharing",
            "classify", "noc", "placement", "pipeline",
        } <= stages

    def test_rejections_carry_reasons(self, jpeg_result):
        rejected = [
            e for e in jpeg_result.plan.provenance if e.outcome == "rejected"
        ]
        assert rejected
        for e in rejected:
            assert e.detail_map.get("reason")

    def test_render_mentions_key_decisions(self, jpeg_result):
        text = render_provenance(jpeg_result.plan)
        assert "Δ_dp" in text
        assert "D_ij" in text
        assert "router(" in text
        assert "Table I" in text

    def test_render_handles_plan_without_provenance(self, jpeg_result):
        import dataclasses

        bare = dataclasses.replace(jpeg_result.plan, provenance=())
        assert "no provenance" in render_provenance(bare)


class TestExplainCli:
    @pytest.mark.parametrize("app", APP_NAMES)
    def test_explain_exits_zero(self, app, capsys):
        assert main(["explain", app]) == 0
        out = capsys.readouterr().out
        assert "Design provenance" in out

    def test_explain_json(self, capsys):
        assert main(["explain", "jpeg", "--json"]) == 0
        events = json.loads(capsys.readouterr().out)
        assert events and {"seq", "stage", "subject", "outcome"} <= set(events[0])

    def test_explain_noc_only(self, capsys):
        assert main(["explain", "jpeg", "--noc-only"]) == 0
        assert "maximum attachment" in capsys.readouterr().out


class TestMetricsExtensions:
    def test_percentile_policy(self):
        assert percentile([], 0) == 0.0
        assert percentile([5.0, 1.0, 3.0], 0) == 1.0
        assert percentile([5.0, 1.0, 3.0], 100) == 5.0
        with pytest.raises(ConfigurationError):
            percentile([1.0], -1)
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101)

    def test_timer_stats_include_p99(self):
        m = MetricsRegistry()
        for v in range(1, 101):
            m.observe("lat", float(v))
        stats = m.timer_stats("lat")
        assert stats["p99_s"] == 99.0
        empty = m.timer_stats("never")
        assert empty == {
            "count": 0, "mean_s": 0.0, "p50_s": 0.0, "p95_s": 0.0, "p99_s": 0.0,
        }

    def test_labelled_series_are_distinct(self):
        m = MetricsRegistry()
        m.incr("reqs", labels={"app": "jpeg"})
        m.incr("reqs", by=2, labels={"app": "canny"})
        assert m.counter("reqs", labels={"app": "jpeg"}) == 1
        assert m.counter("reqs", labels={"app": "canny"}) == 2
        assert m.counter("reqs") == 0
        snap = m.snapshot()
        assert snap["counters"]['reqs{app="jpeg"}'] == 1

    def test_histogram_buckets_cumulative(self):
        m = MetricsRegistry()
        for v in (0.5, 1.5, 99.0):
            m.hist("size", v, buckets=(1.0, 2.0))
        h = m.snapshot()["histograms"]["size"]
        assert h["count"] == 3
        assert h["buckets"]["1.0"] == 1
        assert h["buckets"]["2.0"] == 2
        assert h["buckets"]["+Inf"] == 3
        with pytest.raises(ConfigurationError):
            m.hist("size", 1.0, buckets=(5.0, 10.0))

    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.incr("c", 1)
        b.incr("c", 2)
        a.observe("t", 0.1)
        b.observe("t", 0.3)
        a.gauge("g", 1.0)
        b.gauge("g", 2.0)
        b.hist("h", 0.5, buckets=(1.0,))
        a.merge(b.dump())
        assert a.counter("c") == 3
        assert a.timer_stats("t")["count"] == 2
        assert a.gauge_value("g") == 2.0
        assert a.snapshot()["histograms"]["h"]["count"] == 1

    def test_merge_rejects_mismatched_bounds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.hist("h", 0.5, buckets=(1.0,))
        b.hist("h", 0.5, buckets=(2.0,))
        with pytest.raises(ConfigurationError):
            a.merge(b.dump())

    def test_thread_safety_smoke(self):
        import threading

        m = MetricsRegistry()

        def hammer():
            for _ in range(500):
                m.incr("hits")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.counter("hits") == 8 * 500

    def test_timed_context_manager(self):
        m = MetricsRegistry()
        with timed(m, "block", labels={"k": "v"}):
            pass
        assert m.timer_stats("block", labels={"k": "v"})["count"] == 1


class TestExporters:
    @staticmethod
    def _populated() -> MetricsRegistry:
        m = MetricsRegistry()
        m.incr("jobs_completed", 3, labels={"app": "jpeg"})
        m.gauge("utilization", 0.5)
        m.observe("latency", 0.2)
        m.hist("bytes", 0.7, buckets=(1.0,))
        return m

    def test_prometheus_exposition(self):
        text = to_prometheus(self._populated().snapshot())
        assert '# TYPE repro_jobs_completed counter' in text
        assert 'repro_jobs_completed{app="jpeg"} 3' in text
        assert "# TYPE repro_utilization gauge" in text
        assert 'repro_latency_seconds{quantile="0.99"} 0.2' in text
        assert "repro_latency_seconds_count 1" in text
        assert 'repro_bytes_bucket{le="+Inf"} 1' in text

    def test_prometheus_ignores_foreign_keys(self):
        snap = self._populated().snapshot()
        snap["cache"] = {"hits": 1}
        snap["last_mode"] = "serial"
        assert "last_mode" not in to_prometheus(snap)

    def test_json_snapshot_stable(self):
        snap = self._populated().snapshot()
        assert to_json_snapshot(snap) == to_json_snapshot(dict(reversed(list(snap.items()))))

    def test_write_metrics_format_by_suffix(self, tmp_path):
        snap = self._populated().snapshot()
        prom = write_metrics(snap, tmp_path / "m.prom")
        js = write_metrics(snap, tmp_path / "m.json")
        assert prom.read_text().startswith("# TYPE")
        assert json.loads(js.read_text())["counters"]


class TestSimCounters:
    def test_proposed_run_exposes_components(self, jpeg_result):
        components: dict = {}
        times = simulate_proposed(
            jpeg_result.plan,
            jpeg_result.fitted.host_other_s,
            components_out=components,
        )
        assert {"bus", "dma", "engine"} <= set(components)
        stats = collect_stats(
            times,
            bus=components["bus"],
            noc=components.get("noc"),
            dma=components["dma"],
            engine=components["engine"],
        )
        assert stats.engine_events > 0
        assert stats.dma_transfers > 0
        assert stats.dma_peak_queue >= 1
        for link in stats.links:
            assert link.flits >= -(-link.bytes_moved // 4)

    def test_publish_stats_into_registry(self, jpeg_result):
        components: dict = {}
        times = simulate_proposed(
            jpeg_result.plan,
            jpeg_result.fitted.host_other_s,
            components_out=components,
        )
        stats = collect_stats(
            times,
            bus=components["bus"],
            noc=components.get("noc"),
            dma=components["dma"],
            engine=components["engine"],
        )
        m = MetricsRegistry()
        publish_stats(stats, m, system="proposed")
        labels = {"system": "proposed"}
        assert m.counter("sim_engine_events", labels=labels) == stats.engine_events
        assert m.counter("sim_bus_bytes", labels=labels) == stats.bus_bytes
        if stats.links:
            link = stats.links[0]
            link_labels = dict(labels)
            link_labels["src"] = f"{link.src[0]},{link.src[1]}"
            link_labels["dst"] = f"{link.dst[0]},{link.dst[1]}"
            assert m.counter("sim_link_flits", labels=link_labels) == link.flits
        # Exposition of sim series must be valid too.
        assert "repro_sim_engine_events" in to_prometheus(m.snapshot())


class TestServiceInstrumentation:
    def test_service_collects_spans_and_cache_hits(self, tmp_path):
        from repro.service import DesignService
        from repro.service.jobs import DesignJob

        tracer = Tracer()
        service = DesignService(tracer=tracer)
        job = DesignJob(app="canny", simulate=False)
        service.submit(job)
        names = [e.name for e in tracer.events]
        assert "submit_many" in names
        assert "experiment" in names
        before = len(tracer.events)
        service.submit(job)  # second submit: served from cache
        names = [e.name for e in tracer.events[before:]]
        assert "cache_hit" in names
        assert "experiment" not in names

    def test_experiment_trace_path_writes_chrome_json(self, tmp_path):
        out = tmp_path / "exp.json"
        run_experiment("canny", simulate=False, trace=out)
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phases


class TestLabelEscaping:
    """Regression: hostile label values must not corrupt the exposition."""

    def test_escape_label_value(self):
        from repro.obs.export import escape_label_value

        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        assert escape_label_value(42) == "42"
        assert escape_label_value("plain") == "plain"

    def test_metric_key_escapes_values(self):
        from repro.service.metrics import metric_key

        key = metric_key("jobs", {"app": 'a"b\n'})
        assert key == 'jobs{app="a\\"b\\n"}'

    def test_hostile_label_round_trips_through_exposition(self):
        from repro.obs.export import to_prometheus

        registry = MetricsRegistry()
        registry.incr("jobs", labels={"app": 'evil"} repro_fake 1\n'})
        text = to_prometheus(registry.snapshot())
        # One declaration, one sample — the injected newline/quote must
        # not have produced an extra exposition line.
        lines = [l for l in text.strip().splitlines() if l]
        assert len(lines) == 2
        assert lines[1].startswith('repro_jobs{app="evil\\"} repro_fake')
        assert "repro_fake 1" not in lines[0]

    def test_distinct_hostile_values_stay_distinct_series(self):
        from repro.service.metrics import metric_key

        # Unescaped, both would collapse to the same key.
        a = metric_key("m", {"k": 'x"y'})
        b = metric_key("m", {"k": 'x\\"y'})
        assert a != b
