"""Tests for the hardware models: resources, device, frequency,
synthesis, energy."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ResourceBudgetError
from repro.hw import (
    COMPONENT_LIBRARY,
    ComponentKind,
    Device,
    ResourceCost,
    XC5VFX130T,
    achievable_frequency,
    check_timing,
    estimate_baseline,
    estimate_system,
)
from repro.hw.energy import EnergyModel, compare_energy
from repro.hw.frequency import binding_component
from repro.hw.resources import FOUR_ROUTER_COST, component_cost
from repro.hw.synthesis import PLATFORM_BASE, interconnect_cost
from repro.units import mhz


class TestResourceCost:
    def test_add_and_mul(self):
        a = ResourceCost(10, 20)
        assert a + ResourceCost(1, 2) == ResourceCost(11, 22)
        assert a * 3 == ResourceCost(30, 60)
        assert 3 * a == ResourceCost(30, 60)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourceCost(-1, 0)
        with pytest.raises(ConfigurationError):
            ResourceCost(1, 1) * -2
        with pytest.raises(ConfigurationError):
            ResourceCost(1, 1) - ResourceCost(2, 0)

    def test_zero_identity(self):
        a = ResourceCost(5, 6)
        assert a + ResourceCost.zero() == a


class TestComponentLibrary:
    def test_table2_values_verbatim(self):
        """The paper's Table II, row by row."""
        assert component_cost(ComponentKind.BUS) == ResourceCost(1048, 188)
        assert component_cost(ComponentKind.CROSSBAR) == ResourceCost(201, 200)
        assert component_cost(ComponentKind.ROUTER) == ResourceCost(309, 353)
        assert component_cost(ComponentKind.NA_KERNEL) == ResourceCost(396, 426)
        assert component_cost(ComponentKind.NA_MEMORY) == ResourceCost(60, 114)

    def test_table2_frequencies(self):
        assert COMPONENT_LIBRARY[ComponentKind.BUS].fmax_hz == mhz(345.8)
        assert COMPONENT_LIBRARY[ComponentKind.ROUTER].fmax_hz == mhz(150.0)
        assert COMPONENT_LIBRARY[ComponentKind.CROSSBAR].fmax_hz is None

    def test_four_routers_vs_shared_memory_claim(self):
        """Section IV-B: four routers cost ~5x the crossbar solution."""
        crossbar = component_cost(ComponentKind.CROSSBAR)
        ratio = FOUR_ROUTER_COST.luts / crossbar.luts
        assert 4.0 < ratio < 8.0


class TestDevice:
    def test_fits_and_require(self):
        dev = Device("d", 1000, 1000, 1000)
        assert dev.fits(ResourceCost(900, 900))
        assert not dev.fits(ResourceCost(900, 900), utilization_cap=0.5)
        with pytest.raises(ResourceBudgetError):
            dev.require(ResourceCost(1100, 0))

    def test_utilization(self):
        dev = Device("d", 1000, 2000, 1)
        assert dev.utilization(ResourceCost(500, 500)) == pytest.approx(0.5)

    def test_invalid_cap(self):
        with pytest.raises(ConfigurationError):
            XC5VFX130T.fits(ResourceCost(1, 1), utilization_cap=0.0)

    def test_paper_device_capacity(self):
        assert XC5VFX130T.luts == 81920


class TestFrequency:
    def test_router_binds_noc_systems(self):
        kinds = [ComponentKind.BUS, ComponentKind.ROUTER, ComponentKind.NA_KERNEL]
        assert achievable_frequency(kinds) == mhz(150.0)
        assert binding_component(kinds)[0] is ComponentKind.ROUTER

    def test_combinational_only_unbounded(self):
        assert achievable_frequency([ComponentKind.CROSSBAR]) is None

    def test_kernel_clock_passes_timing(self):
        check_timing(list(ComponentKind), 100e6)

    def test_overclocking_rejected(self):
        with pytest.raises(ConfigurationError):
            check_timing([ComponentKind.ROUTER], mhz(200.0))
        with pytest.raises(ConfigurationError):
            check_timing([ComponentKind.ROUTER], 0)


class TestSynthesis:
    def test_baseline_is_base_plus_bus_plus_kernels(self):
        est = estimate_baseline([ResourceCost(100, 200), ResourceCost(50, 60)])
        expected = PLATFORM_BASE + component_cost(ComponentKind.BUS) + ResourceCost(
            150, 260
        )
        assert est.total == expected

    def test_interconnect_cost_breakdown(self):
        total, breakdown = interconnect_cost(
            {ComponentKind.ROUTER: 4, ComponentKind.CROSSBAR: 1}
        )
        assert total == component_cost(ComponentKind.ROUTER) * 4 + component_cost(
            ComponentKind.CROSSBAR
        )
        assert breakdown[ComponentKind.ROUTER][0] == 4

    def test_zero_counts_skipped(self):
        total, breakdown = interconnect_cost({ComponentKind.ROUTER: 0})
        assert total == ResourceCost.zero()
        assert breakdown == {}

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            interconnect_cost({ComponentKind.ROUTER: -1})

    def test_custom_interconnect_excludes_bus(self):
        est = estimate_system(
            "s",
            [ResourceCost(100, 100)],
            {ComponentKind.BUS: 1, ComponentKind.CROSSBAR: 1},
        )
        assert est.custom_interconnect == component_cost(ComponentKind.CROSSBAR)

    def test_ratio_requires_kernels(self):
        est = estimate_system("s", [], {ComponentKind.BUS: 1})
        with pytest.raises(ConfigurationError):
            _ = est.interconnect_over_kernels


class TestEnergy:
    def test_power_affine(self):
        m = EnergyModel(p_static_w=1.0, w_per_lut=1e-3, w_per_reg=1e-3)
        assert m.power_w(ResourceCost(100, 200)) == pytest.approx(1.3)

    def test_energy_product(self):
        m = EnergyModel()
        r = ResourceCost(1000, 1000)
        assert m.energy_j(r, 2.0) == pytest.approx(2.0 * m.power_w(r))

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyModel().energy_j(ResourceCost(1, 1), -1.0)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(p_static_w=-1.0)

    def test_compare_energy_report(self):
        m = EnergyModel()
        rep = compare_energy(
            "app", m,
            baseline_resources=ResourceCost(10_000, 10_000),
            proposed_resources=ResourceCost(12_000, 12_000),
            baseline_time_s=1.0,
            proposed_time_s=0.4,
        )
        assert rep.proposed_power_w > rep.baseline_power_w
        assert rep.normalized_energy < 0.5
        assert rep.saving_percent == pytest.approx(
            100 * (1 - rep.normalized_energy)
        )

    def test_power_increase_is_minor(self):
        """The paper: power is 'almost identical, with a minor increase'.
        A few thousand extra LUTs must move power by only a few percent."""
        m = EnergyModel()
        base = m.power_w(ResourceCost(12_000, 12_000))
        ours = m.power_w(ResourceCost(21_000, 21_000))
        assert (ours - base) / base < 0.10
