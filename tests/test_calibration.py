"""Tests for the calibration fit (DESIGN.md §6)."""

from __future__ import annotations

import pytest

from repro.apps import TARGETS, fit_application, get_application
from repro.apps.calibration import CalibrationTargets, _proportional_split
from repro.apps.registry import APP_NAMES
from repro.core.analytic import AnalyticModel
from repro.errors import ConfigurationError
from repro.hw.resources import ComponentKind, component_cost
from repro.hw.synthesis import PLATFORM_BASE


class TestProportionalSplit:
    def test_conserves_total(self):
        out = _proportional_split(100, {"a": 1.0, "b": 2.0, "c": 4.0})
        assert sum(out.values()) == 100

    def test_ordering(self):
        out = _proportional_split(100, {"a": 1.0, "b": 9.0})
        assert out["b"] > out["a"]

    def test_zero_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            _proportional_split(10, {"a": 0.0})

    def test_remainder_to_heaviest(self):
        out = _proportional_split(10, {"a": 1.0, "b": 1.0, "c": 1.0})
        assert sum(out.values()) == 10
        assert max(out.values()) - min(out.values()) <= 1


class TestTargetsTable:
    def test_all_apps_present(self):
        assert set(TARGETS) == set(APP_NAMES)

    def test_jpeg_ratio_is_published_value(self):
        assert TARGETS["jpeg"].comm_comp_ratio == pytest.approx(3.63)

    def test_average_ratio_matches_paper(self):
        """The paper: 'the ratio is about 2.09x' on average."""
        avg = sum(t.comm_comp_ratio for t in TARGETS.values()) / len(TARGETS)
        assert avg == pytest.approx(2.09, abs=0.02)

    def test_sigma_values_are_table3_ratios(self):
        t = TARGETS["klt"]
        assert t.baseline_app_speedup == pytest.approx(3.72 / 1.26)
        assert t.baseline_kernel_speedup == pytest.approx(6.58 / 1.55)

    def test_invalid_targets_rejected(self):
        with pytest.raises(ConfigurationError):
            CalibrationTargets("x", 0.0, 2.0, 2.0, 100, 100)
        with pytest.raises(ConfigurationError):
            CalibrationTargets("x", 1.0, 1.0, 2.0, 100, 100)


@pytest.mark.parametrize("name", APP_NAMES)
class TestFitReproducesTargets:
    def test_baseline_ratio_exact(self, name, fitted_apps):
        f = fitted_apps[name]
        model = AnalyticModel(f.graph, f.theta_s_per_byte, f.host_other_s)
        assert model.baseline().comm_comp_ratio == pytest.approx(
            TARGETS[name].comm_comp_ratio, rel=1e-6
        )

    def test_baseline_speedups_exact(self, name, fitted_apps):
        f = fitted_apps[name]
        model = AnalyticModel(f.graph, f.theta_s_per_byte, f.host_other_s)
        pair = model.baseline_vs_software()
        assert pair.kernels == pytest.approx(
            TARGETS[name].baseline_kernel_speedup, rel=1e-6
        )
        assert pair.application == pytest.approx(
            TARGETS[name].baseline_app_speedup, rel=1e-3
        )

    def test_baseline_resources_match_table4(self, name, fitted_apps):
        f = fitted_apps[name]
        kernels = sum(
            f.graph.kernel(k).resources.luts for k in f.graph.kernel_names()
        )
        total = (
            kernels + PLATFORM_BASE.luts + component_cost(ComponentKind.BUS).luts
        )
        assert total == TARGETS[name].baseline_luts

    def test_tau_split_proportional_to_work(self, name, fitted_apps):
        f = fitted_apps[name]
        profile = f.app.profile()
        taus = {k: f.graph.kernel(k).tau_cycles for k in f.graph.kernel_names()}
        works = {k: profile.function(k).work for k in taus}
        # Ratios of tau must match ratios of work.
        ks = list(taus)
        for a, b in zip(ks, ks[1:]):
            assert taus[a] / taus[b] == pytest.approx(
                works[a] / works[b], rel=1e-6
            )

    def test_host_other_nonnegative(self, name, fitted_apps):
        assert fitted_apps[name].host_other_s >= 0.0

    def test_traits_propagated(self, name, fitted_apps):
        f = fitted_apps[name]
        traits = f.app.kernel_traits()
        for k in f.graph.kernel_names():
            spec = f.graph.kernel(k)
            assert spec.parallelizable == traits[k].parallelizable
            assert spec.streams_host_io == traits[k].streams_host_io


class TestFitErrors:
    def test_unknown_app_without_targets(self, theta):
        class Fake(get_application("canny").__class__):
            name = "mystery"

        with pytest.raises(ConfigurationError):
            fit_application(Fake(), theta)

    def test_invalid_theta(self):
        with pytest.raises(ConfigurationError):
            fit_application(get_application("canny"), 0.0)
