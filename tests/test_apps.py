"""Tests for the four instrumented applications.

Each application is tested for (a) functional correctness of the real
computation, (b) the communication-profile *structure* Algorithm 1
depends on (who talks to whom), and (c) the structural properties that
produce the paper's per-app solutions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import get_application
from repro.apps.canny import gaussian_blur, hysteresis_threshold, nonmax, sobel
from repro.apps.fluid import (
    advect_field,
    diffuse_field,
    divergence,
    project_fields,
)
from repro.apps.jpeg import (
    decode_ac,
    decode_dc,
    encode_ac,
    encode_dc,
    fdct2,
    idct2,
    zigzag_order,
)
from repro.apps.klt import bilinear_sample, central_gradients, smooth_noise
from repro.apps.registry import APP_NAMES
from repro.core import CommGraph, KernelSpec
from repro.core.sharing import find_sharing_pairs
from repro.errors import ConfigurationError


# ---------------------------------------------------------------------------
# Algorithm-level unit tests (pure functions)
# ---------------------------------------------------------------------------


class TestCannyPrimitives:
    def test_gaussian_preserves_constant(self):
        img = np.full((20, 20), 7.0)
        out = gaussian_blur(img)
        assert np.allclose(out, 7.0)

    def test_gaussian_smooths_noise(self):
        rng = np.random.default_rng(1)
        img = rng.standard_normal((40, 40))
        assert gaussian_blur(img).std() < img.std()

    def test_sobel_detects_vertical_edge(self):
        img = np.zeros((16, 16))
        img[:, 8:] = 100.0
        mag, direction = sobel(img)
        assert mag[:, 7:9].max() > 100
        assert mag[:, :5].max() == 0
        # Gradient along x => direction sector 0.
        assert (direction[4:12, 7:9] == 0).all()

    def test_nonmax_thins_edges(self):
        img = np.zeros((16, 16))
        img[:, 8:] = 100.0
        mag, d = sobel(img)
        thinned = nonmax(mag, d)
        assert (thinned > 0).sum() <= (mag > 0).sum()

    def test_hysteresis_keeps_connected_weak(self):
        nms = np.zeros((10, 10))
        nms[5, 5] = 100.0  # strong
        nms[5, 6] = 30.0  # weak, connected
        nms[1, 1] = 30.0  # weak, isolated
        edges = hysteresis_threshold(nms, low=20.0, high=60.0)
        assert edges[5, 5] == 1 and edges[5, 6] == 1
        assert edges[1, 1] == 0


class TestJpegPrimitives:
    def test_zigzag_is_permutation(self):
        zz = zigzag_order()
        assert sorted(zz) == list(range(64))
        assert list(zz[:4]) == [0, 1, 8, 16]

    def test_dct_roundtrip(self):
        rng = np.random.default_rng(2)
        block = rng.uniform(-128, 127, (8, 8))
        assert np.allclose(idct2(fdct2(block)), block, atol=1e-9)

    def test_dc_codec_roundtrip(self):
        values = np.array([5, 5, -3, 100, 0, -100], dtype=np.int16)
        stream = encode_dc(values)
        assert np.array_equal(decode_dc(stream, len(values)), values)

    def test_ac_codec_roundtrip(self):
        rng = np.random.default_rng(3)
        blocks = np.zeros((10, 63), dtype=np.int16)
        for b in range(10):
            idx = rng.choice(63, size=6, replace=False)
            blocks[b, idx] = rng.integers(-50, 50, size=6)
        stream = encode_ac(blocks)
        assert np.array_equal(decode_ac(stream, 10), blocks)

    def test_ac_all_zero_blocks(self):
        blocks = np.zeros((4, 63), dtype=np.int16)
        assert np.array_equal(decode_ac(encode_ac(blocks), 4), blocks)


class TestKltPrimitives:
    def test_bilinear_at_integer_coords(self):
        img = np.arange(25, dtype=float).reshape(5, 5)
        ys, xs = np.array([2.0]), np.array([3.0])
        assert bilinear_sample(img, ys, xs)[0] == pytest.approx(13.0)

    def test_bilinear_interpolates(self):
        img = np.array([[0.0, 10.0], [0.0, 10.0]])
        val = bilinear_sample(img, np.array([0.0]), np.array([0.5]))[0]
        assert val == pytest.approx(5.0)

    def test_gradients_of_ramp(self):
        img = np.tile(np.arange(10, dtype=float), (10, 1))
        gx, gy = central_gradients(img)
        assert np.allclose(gx[:, 1:-1], 1.0)
        assert np.allclose(gy[1:-1, :], 0.0)

    def test_smooth_noise_range_and_texture(self):
        img = smooth_noise(np.random.default_rng(4), 64)
        assert img.min() >= 0 and img.max() <= 255
        assert img.std() > 10  # actually textured


class TestFluidPrimitives:
    def test_diffuse_conserves_constant(self):
        field = np.full((32, 32), 3.0)
        assert np.allclose(diffuse_field(field, 0.001)[1:-1, 1:-1], 3.0, atol=1e-6)

    def test_advect_zero_velocity_identity(self):
        rng = np.random.default_rng(5)
        f = rng.random((32, 32))
        zero = np.zeros_like(f)
        out = advect_field(f, zero, zero)
        assert np.allclose(out[1:-1, 1:-1], f[1:-1, 1:-1])

    def test_projection_reduces_divergence(self):
        # A band-limited velocity field (white noise needs more Jacobi
        # sweeps than the solver's fixed budget to converge fully).
        ys, xs = np.mgrid[0:32, 0:32] / 32.0
        u = np.sin(2 * np.pi * xs) * np.cos(4 * np.pi * ys)
        v = np.cos(6 * np.pi * xs) * np.sin(2 * np.pi * ys)
        before = np.abs(divergence(u, v)).mean()
        u2, v2 = project_fields(u, v)
        after = np.abs(divergence(u2, v2)).mean()
        assert after < 0.5 * before


# ---------------------------------------------------------------------------
# End-to-end application behaviour
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", APP_NAMES)
class TestAllApplications:
    def test_runs_and_verifies(self, name):
        app = get_application(name)
        profile = app.run_profiled(verify=True)
        assert profile.total_bytes() > 0

    def test_every_kernel_charges_work(self, name):
        app = get_application(name)
        profile = app.profile()
        for k in app.kernel_names():
            assert profile.function(k).work > 0

    def test_profile_deterministic(self, name):
        p1 = get_application(name).run_profiled()
        p2 = get_application(name).run_profiled()
        assert {(e.producer, e.consumer, e.bytes) for e in p1.edges} == {
            (e.producer, e.consumer, e.bytes) for e in p2.edges
        }

    def test_kernels_exchange_data(self, name):
        app = get_application(name)
        g = CommGraph.from_profile(
            app.profile(), [KernelSpec(k, 1.0, 1.0) for k in app.kernel_names()]
        )
        assert len(g.kk_edges) > 0


class TestRegistry:
    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigurationError):
            get_application("doom")

    def test_names_cover_paper_apps(self):
        assert set(APP_NAMES) == {"canny", "jpeg", "klt", "fluid"}

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            get_application("canny", scale=0)


# ---------------------------------------------------------------------------
# Structural properties that produce the paper's per-app solutions
# ---------------------------------------------------------------------------


def kernel_graph(name):
    app = get_application(name)
    specs = [KernelSpec(k, 1.0, 1.0) for k in app.kernel_names()]
    return app, CommGraph.from_profile(app.profile(), specs)


class TestPaperStructure:
    def test_jpeg_fig5_structure(self):
        app, g = kernel_graph("jpeg")
        # dquantz_lum sends only to j_rev_dct, which receives kernel
        # input only from dquantz_lum (the paper's SM pair).
        assert g.consumers_of("dquantz_lum") == ("j_rev_dct",)
        assert g.producers_of("j_rev_dct") == ("dquantz_lum",)
        # huff_dc_dec: host input only, kernel output only (R2, S1).
        assert g.d_h_in("huff_dc_dec") > 0
        assert g.d_k_in("huff_dc_dec") == 0
        assert g.d_h_out("huff_dc_dec") == 0
        assert g.d_k_out("huff_dc_dec") > 0
        # j_rev_dct also consumes host data (tables) and feeds the host.
        assert g.d_h_in("j_rev_dct") > 0
        assert g.d_h_out("j_rev_dct") > 0

    def test_klt_single_exclusive_pair(self):
        app, g = kernel_graph("klt")
        links = find_sharing_pairs(g)
        assert len(links) == 1
        assert (links[0].producer, links[0].consumer) == (
            "compute_gradients",
            "track_features",
        )
        assert links[0].crossbar  # tracker talks to the host
        # After sharing, nothing is left for a NoC.
        assert len(g.kk_edges) == 1

    def test_fluid_has_no_exclusive_pairs(self):
        app, g = kernel_graph("fluid")
        assert find_sharing_pairs(g) == ()
        # Each kernel talks to at least two partners.
        for k in g.kernel_names():
            partners = set(g.consumers_of(k)) | set(g.producers_of(k))
            assert len(partners) >= 2

    def test_canny_has_pair_and_residual(self):
        app, g = kernel_graph("canny")
        links = find_sharing_pairs(g)
        assert len(links) >= 1
        # Not everything collapses into shared memory: a NoC remains.
        assert len(g.kk_edges) > len(links)

    def test_jpeg_hottest_is_huff_ac(self):
        app = get_application("jpeg")
        profile = app.profile()
        works = {k: profile.function(k).work for k in app.kernel_names()}
        assert max(works, key=works.get) == "huff_ac_dec"
        assert app.kernel_traits()["huff_ac_dec"].parallelizable
