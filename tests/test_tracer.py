"""Tests for the memory tracer and its QUAD semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TracerStateError
from repro.profiling import Tracer


class TestContexts:
    def test_default_context_is_entry(self):
        t = Tracer()
        assert t.current == Tracer.ENTRY

    def test_nested_contexts(self):
        t = Tracer()
        with t.context("f"):
            assert t.current == "f"
            with t.context("g"):
                assert t.current == "g"
            assert t.current == "f"
        assert t.current == Tracer.ENTRY

    def test_invalid_context_name_rejected(self):
        t = Tracer()
        with pytest.raises(TracerStateError):
            with t.context(""):
                pass
        with pytest.raises(TracerStateError):
            with t.context(Tracer.ENTRY):
                pass

    def test_calls_counted(self):
        t = Tracer()
        for _ in range(3):
            with t.context("f"):
                pass
        calls, *_ = t.function_counters("f")
        assert calls == 3


class TestProducerConsumer:
    def test_basic_edge(self):
        t = Tracer()
        with t.context("producer"):
            t.record_store(0, 100)
        with t.context("consumer"):
            t.record_load(0, 100)
        assert t.edge_bytes("producer", "consumer") == 100
        assert t.edge_umas("producer", "consumer") == 100

    def test_unwritten_bytes_attributed_to_entry(self):
        t = Tracer()
        with t.context("consumer"):
            t.record_load(0, 50)
        assert t.edge_bytes(Tracer.ENTRY, "consumer") == 50

    def test_partial_overlap_splits_attribution(self):
        t = Tracer()
        with t.context("p1"):
            t.record_store(0, 10)
        with t.context("p2"):
            t.record_store(10, 20)
        with t.context("c"):
            t.record_load(5, 15)
        assert t.edge_bytes("p1", "c") == 5
        assert t.edge_bytes("p2", "c") == 5

    def test_gap_in_middle_goes_to_entry(self):
        t = Tracer()
        with t.context("p"):
            t.record_store(0, 4)
            t.record_store(8, 12)
        with t.context("c"):
            t.record_load(0, 12)
        assert t.edge_bytes("p", "c") == 8
        assert t.edge_bytes(Tracer.ENTRY, "c") == 4

    def test_self_reads_not_counted(self):
        t = Tracer()
        with t.context("f"):
            t.record_store(0, 10)
            t.record_load(0, 10)
        assert t.edge_bytes("f", "f") == 0
        assert t.edges() == {}

    def test_overwrite_changes_producer(self):
        t = Tracer()
        with t.context("p1"):
            t.record_store(0, 10)
        with t.context("p2"):
            t.record_store(0, 10)
        with t.context("c"):
            t.record_load(0, 10)
        assert t.edge_bytes("p1", "c") == 0
        assert t.edge_bytes("p2", "c") == 10

    def test_repeated_reads_count_bytes_but_not_umas(self):
        """QUAD: bytes count per transfer, UMAs count unique addresses."""
        t = Tracer()
        with t.context("p"):
            t.record_store(0, 100)
        with t.context("c"):
            t.record_load(0, 100)
            t.record_load(0, 100)
        assert t.edge_bytes("p", "c") == 200
        assert t.edge_umas("p", "c") == 100

    def test_last_writer_of(self):
        t = Tracer()
        assert t.last_writer_of(5) is None
        with t.context("p"):
            t.record_store(0, 10)
        assert t.last_writer_of(5) == "p"

    def test_pause_suppresses_recording(self):
        t = Tracer()
        with t.context("p"):
            with t.paused():
                t.record_store(0, 10)
        with t.context("c"):
            t.record_load(0, 10)
        assert t.edge_bytes("p", "c") == 0
        assert t.edge_bytes(Tracer.ENTRY, "c") == 10


class TestCounters:
    def test_load_store_byte_counters(self):
        t = Tracer()
        with t.context("f"):
            t.record_store(0, 30)
            t.record_load(100, 110)
        _, loaded, stored, _ = t.function_counters("f")
        assert loaded == 10
        assert stored == 30

    def test_work_charged_to_current_context(self):
        t = Tracer()
        with t.context("f"):
            t.add_work(5.0)
            t.add_work(2.5)
        assert t.function_counters("f")[3] == 7.5

    def test_work_ignored_when_nonpositive(self):
        t = Tracer()
        with t.context("f"):
            t.add_work(0.0)
            t.add_work(-3.0)
        assert t.function_counters("f")[3] == 0.0

    def test_unknown_function_counters_zero(self):
        t = Tracer()
        assert t.function_counters("nope") == (0, 0, 0, 0.0)


# A random schedule of stores/loads must match a naive byte-level model.
_events = st.lists(
    st.tuples(
        st.sampled_from(["f", "g", "h"]),
        st.booleans(),  # True = store
        st.integers(0, 120),
        st.integers(0, 30),
    ),
    max_size=50,
)


@settings(max_examples=150, deadline=None)
@given(events=_events)
def test_tracer_matches_naive_byte_model(events):
    t = Tracer()
    owner = {}  # addr -> function
    ref_edges = {}
    for func, is_store, lo, length in events:
        hi = lo + length
        with t.context(func):
            if is_store:
                t.record_store(lo, hi)
                for a in range(lo, hi):
                    owner[a] = func
            else:
                t.record_load(lo, hi)
                for a in range(lo, hi):
                    p = owner.get(a, Tracer.ENTRY)
                    if p != func:
                        key = (p, func)
                        b, u = ref_edges.get(key, (0, set()))
                        u = u or set()
                        u.add(a)
                        ref_edges[key] = (b + 1, u)
    got = t.edges()
    expected = {k: (b, len(u)) for k, (b, u) in ref_edges.items()}
    assert got == expected
