"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["design", "doom"])

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["design", "jpeg", "--no-sharing", "--noc-only"]
        )
        assert args.no_sharing and args.noc_only


class TestCommands:
    def test_apps_lists_all(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for name in ("canny", "jpeg", "klt", "fluid"):
            assert name in out

    def test_profile_graph(self, capsys):
        assert main(["profile", "klt"]) == 0
        out = capsys.readouterr().out
        assert "compute_gradients" in out
        assert "UMAs" in out

    def test_profile_table(self, capsys):
        assert main(["profile", "klt", "--table"]) == 0
        out = capsys.readouterr().out
        assert "producer" in out

    def test_design_default(self, capsys):
        assert main(["design", "jpeg"]) == 0
        out = capsys.readouterr().out
        assert "duplicated kernels : huff_ac_dec" in out
        assert "solution" in out

    def test_design_no_sharing(self, capsys):
        assert main(["design", "jpeg", "--no-sharing"]) == 0
        out = capsys.readouterr().out
        assert "shared memory" not in out

    def test_design_noc_only(self, capsys):
        assert main(["design", "klt", "--noc-only"]) == 0
        out = capsys.readouterr().out
        assert "mesh" in out  # klt normally has no NoC at all

    def test_simulate(self, capsys):
        assert main(["simulate", "klt"]) == 0
        out = capsys.readouterr().out
        assert "baseline (makespan" in out
        assert "simulated speed-up" in out

    def test_pareto(self, capsys):
        assert main(["pareto", "jpeg"]) == 0
        out = capsys.readouterr().out
        assert "bus-only" in out
        assert "Pareto-optimal" in out
        assert "*" in out

    def test_reconfig_default_device(self, capsys):
        assert main(["reconfig"]) == 0
        out = capsys.readouterr().out
        assert "static_all" in out
        assert "best: static_all" in out  # xc5vfx130t fits everything

    def test_reconfig_small_device(self, capsys):
        assert main(["reconfig", "--device-luts", "36000",
                     "--device-regs", "50000"]) == 0
        out = capsys.readouterr().out
        assert "N/A" in out  # static no longer fits
        assert "best:" in out

    def test_portfolio(self, capsys):
        assert main(["portfolio"]) == 0
        out = capsys.readouterr().out
        assert "jpeg" in out and "bound" in out
        # jpeg tops the ranking (first app row after the header).
        rows = [l for l in out.splitlines() if l and not l.startswith(("app", "-"))]
        assert rows[0].startswith("jpeg")

    def test_report_markdown(self, capsys, tmp_path):
        out_file = tmp_path / "report.md"
        assert main(["report", "--markdown", "--output", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Reproduced evaluation")
        assert "## Table IV" in out
        assert out_file.read_text().startswith("# Reproduced evaluation")

    def test_report_contains_all_sections(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        for marker in ("Fig. 4", "Table II", "Fig. 5", "Fig. 6",
                       "Table III", "Table IV", "Fig. 8", "Fig. 9"):
            assert marker in out
