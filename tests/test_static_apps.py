"""The static descriptions agree with the traced apps byte-for-byte."""

import json
import pathlib

import pytest

from repro.apps import get_application
from repro.core.commgraph import CommGraph
from repro.core.kernel import KernelSpec
from repro.errors import ConfigurationError
from repro.static import STATIC_APP_NAMES, analyze, describe
from repro.static.fit import describe_application

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"

DETERMINISTIC_APPS = ("canny", "klt", "fluid")


def traced_graph(name, scale=1, seed=2014):
    app = get_application(name, scale=scale, seed=seed)
    profile = app.profile()
    names = app.kernel_names()
    graph = CommGraph.from_profile(
        profile, [KernelSpec(n, 0.0, 0.0) for n in names]
    )
    work = {n: profile.function(n).work for n in names}
    return graph, work


@pytest.mark.parametrize("name", DETERMINISTIC_APPS)
@pytest.mark.parametrize("scale", [1, 2])
def test_deterministic_apps_are_byte_exact(name, scale):
    static = analyze(describe(name, scale=scale))
    traced, work = traced_graph(name, scale=scale)
    assert static.exact
    assert static.nominal_kk() == traced.kk_edges
    assert list(static.kk_edges) == list(traced.kk_edges)  # same order
    assert static.nominal_host_in() == traced.host_in
    assert static.nominal_host_out() == traced.host_out
    for kernel, charged in work.items():
        assert repr(static.work[kernel]) == repr(charged)


@pytest.mark.parametrize("scale", [1, 2])
def test_jpeg_deterministic_edges_exact_streams_bounded(scale):
    static = analyze(describe("jpeg", scale=scale))
    traced, work = traced_graph("jpeg", scale=scale)
    assert len(static.approximations) == 2
    assert {a.buffer for a in static.approximations} == {
        "dc_stream", "ac_stream"
    }
    assert static.nominal_kk() == traced.kk_edges
    assert list(static.kk_edges) == list(traced.kk_edges)
    assert static.nominal_host_out() == traced.host_out
    for kernel, ext in static.host_in.items():
        if ext.exact:
            assert ext.nominal == traced.host_in[kernel], kernel
        else:
            assert ext.contains(traced.host_in[kernel]), (kernel, ext)
    bounded = {k for k, e in static.host_in.items() if not e.exact}
    assert bounded == {"huff_dc_dec", "huff_ac_dec"}
    for kernel, charged in work.items():
        assert repr(static.work[kernel]) == repr(charged)


@pytest.mark.parametrize("steps", [1, 2, 3])
def test_fluid_steps_knob_stays_exact(steps):
    static = analyze(describe("fluid", steps=steps))
    app = get_application("fluid", seed=2014)
    app.steps = steps
    profile = app.profile()
    names = app.kernel_names()
    traced = CommGraph.from_profile(
        profile, [KernelSpec(n, 0.0, 0.0) for n in names]
    )
    assert static.nominal_kk() == traced.kk_edges
    assert static.nominal_host_in() == traced.host_in
    assert static.nominal_host_out() == traced.host_out


def test_describe_application_forwards_live_knobs():
    app = get_application("fluid")
    app.steps = 2
    static = describe_application(app)
    assert static == analyze(describe("fluid", scale=app.scale, steps=2))


def test_describe_rejects_unknown_app_and_bad_scale():
    with pytest.raises(ConfigurationError):
        describe("mystery")
    with pytest.raises(ConfigurationError):
        describe("canny", scale=0)
    with pytest.raises(ConfigurationError):
        describe("fluid", steps=0)


@pytest.mark.parametrize("name", STATIC_APP_NAMES)
def test_static_graph_matches_golden(name):
    doc = analyze(describe(name)).to_dict()
    golden = json.loads((GOLDEN_DIR / f"static_{name}.json").read_text())
    assert doc == golden
