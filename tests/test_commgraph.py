"""Tests for the communication graph (Eq. 1 quantities and structure)."""

from __future__ import annotations

import pytest

from repro.core import CommGraph, KernelSpec
from repro.errors import DesignError
from repro.profiling import CommunicationProfile, FunctionStats, ProfileEdge


def spec(name, tau=1000.0, sw=8000.0, **kw):
    return KernelSpec(name, tau, sw, **kw)


@pytest.fixture()
def graph():
    ks = [spec("a"), spec("b"), spec("c")]
    return CommGraph(
        kernels={k.name: k for k in ks},
        kk_edges={("a", "b"): 100, ("b", "c"): 50, ("a", "c"): 25},
        host_in={"a": 200, "c": 10},
        host_out={"c": 300},
    )


class TestValidation:
    def test_unknown_edge_kernel_rejected(self):
        with pytest.raises(DesignError):
            CommGraph(kernels={"a": spec("a")}, kk_edges={("a", "zz"): 5})

    def test_self_edge_rejected(self):
        with pytest.raises(DesignError):
            CommGraph(kernels={"a": spec("a")}, kk_edges={("a", "a"): 5})

    def test_zero_weight_edge_rejected(self):
        with pytest.raises(DesignError):
            CommGraph(
                kernels={"a": spec("a"), "b": spec("b")},
                kk_edges={("a", "b"): 0},
            )

    def test_unknown_host_flow_rejected(self):
        with pytest.raises(DesignError):
            CommGraph(kernels={"a": spec("a")}, host_in={"zz": 5})


class TestEquationOneQuantities:
    def test_d_quantities(self, graph):
        assert graph.d_h_in("a") == 200
        assert graph.d_k_in("a") == 0
        assert graph.d_k_out("a") == 125
        assert graph.d_h_out("a") == 0
        assert graph.d_in("a") == 200
        assert graph.d_out("a") == 125
        assert graph.d_k_in("c") == 75
        assert graph.d_in("c") == 85
        assert graph.d_out("c") == 300

    def test_total_traffic_counts_kk_twice(self, graph):
        # Eq. 2's sum counts each kernel-kernel edge once as output and
        # once as input: H(510) + 2*K(175) = 860.
        assert graph.total_kernel_traffic() == 860

    def test_unknown_kernel_raises(self, graph):
        with pytest.raises(DesignError):
            graph.d_in("zz")


class TestStructure:
    def test_producers_consumers_sorted_by_weight(self, graph):
        assert graph.consumers_of("a") == ("b", "c")
        assert graph.producers_of("c") == ("b", "a")

    def test_edges_by_weight_deterministic(self, graph):
        assert graph.edges_by_weight() == (
            ("a", "b", 100),
            ("b", "c", 50),
            ("a", "c", 25),
        )

    def test_invocation_order_topological(self, graph):
        order = graph.invocation_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_invocation_order_breaks_cycles(self):
        ks = [spec("x"), spec("y")]
        g = CommGraph(
            kernels={k.name: k for k in ks},
            kk_edges={("x", "y"): 10, ("y", "x"): 10},
        )
        order = g.invocation_order()
        assert sorted(order) == ["x", "y"]

    def test_invocation_order_complete(self, graph):
        assert sorted(graph.invocation_order()) == ["a", "b", "c"]


class TestTransformations:
    def test_without_edge(self, graph):
        g2 = graph.without_edge("a", "b")
        assert g2.edge_bytes("a", "b") == 0
        assert g2.edge_bytes("b", "c") == 50
        # Original untouched.
        assert graph.edge_bytes("a", "b") == 100

    def test_without_missing_edge_raises(self, graph):
        with pytest.raises(DesignError):
            graph.without_edge("c", "a")

    def test_restricted_redirects_to_host(self, graph):
        g2 = graph.restricted(["a", "b"])
        # b->c became b->host, a->c became a->host.
        assert g2.d_h_out("b") == 50
        assert g2.d_h_out("a") == 25
        assert g2.edge_bytes("a", "b") == 100
        assert sorted(g2.kernel_names()) == ["a", "b"]

    def test_restricted_unknown_kernel_raises(self, graph):
        with pytest.raises(DesignError):
            graph.restricted(["a", "zz"])


class TestFromProfile:
    def test_from_profile_folds_non_kernels(self):
        profile = CommunicationProfile(
            [
                ProfileEdge("__entry__", "k1", 64, 64),
                ProfileEdge("setup", "k1", 32, 32),
                ProfileEdge("k1", "k2", 128, 128),
                ProfileEdge("k2", "render", 16, 16),
            ],
            [
                FunctionStats(n, 1, 0, 0, 1.0)
                for n in ("__entry__", "setup", "k1", "k2", "render")
            ],
        )
        g = CommGraph.from_profile(profile, [spec("k1"), spec("k2")])
        assert g.d_h_in("k1") == 96  # entry + setup both fold into host
        assert g.edge_bytes("k1", "k2") == 128
        assert g.d_h_out("k2") == 16
