"""Tests for ``repro.obs.runtime.trends``: bench history + regression gate.

Covers report flattening, the JSONL history file (append/load/corrupt
handling), the median-of-history comparison with noise floors, the
sparkline renderer, and the ``repro bench --compare`` CLI exit codes
with an injected 2x slowdown.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigurationError, ReproError
from repro.obs.runtime.trends import (
    DEFAULT_THRESHOLD,
    HISTORY_KIND,
    MetricDelta,
    append_history,
    compare_bench,
    flatten_bench,
    history_entry,
    load_history,
    regressions,
    render_trend_table,
    sparkline,
    timing_suffix,
)

REPORT = {
    "kind": "bench-report",
    "version": 1,
    "apps": {
        "jpeg": {"design_s": 0.010, "profiler_overhead": 1.2,
                 "conservation_ok": True},
    },
    "service": {"batch_cold_s": 0.020, "cache_speedup": 90.0},
    "server": {"p99_ms": 4.0},
    "schema": {"apps.jpeg.design_s": "ignored prose"},
}


def _report(scale: float = 1.0) -> dict:
    doc = json.loads(json.dumps(REPORT))
    doc["apps"]["jpeg"]["design_s"] *= scale
    doc["service"]["batch_cold_s"] *= scale
    doc["server"]["p99_ms"] *= scale
    return doc


class TestFlatten:
    def test_flattens_measured_sections_only(self):
        flat = flatten_bench(REPORT)
        assert flat["apps.jpeg.design_s"] == 0.010
        assert flat["service.batch_cold_s"] == 0.020
        assert flat["server.p99_ms"] == 4.0
        # prose/metadata sections and bools are not metrics
        assert not any(k.startswith("schema") for k in flat)
        assert "apps.jpeg.conservation_ok" not in flat

    def test_timing_suffix(self):
        assert timing_suffix("apps.jpeg.design_s")
        assert timing_suffix("server.p99_ms")
        assert not timing_suffix("service.cache_speedup")
        assert not timing_suffix("apps.jpeg.profiler_overhead")


class TestHistoryFile:
    def test_append_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history(REPORT, path, ts=100.0)
        append_history(_report(2.0), path, ts=200.0)
        entries = load_history(path)
        assert len(entries) == 2
        assert all(e["kind"] == HISTORY_KIND for e in entries)
        assert entries[0]["ts"] == 100.0
        assert entries[1]["metrics"]["server.p99_ms"] == 8.0

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "nope.jsonl") == []

    def test_corrupt_line_is_loud(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history(REPORT, path, ts=1.0)
        with path.open("a") as f:
            f.write("{not json\n")
        with pytest.raises(ValueError):
            load_history(path)

    def test_wrong_kind_is_loud(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text(json.dumps({"kind": "something-else"}) + "\n")
        with pytest.raises(ValueError):
            load_history(path)

    def test_history_entry_shape(self):
        entry = history_entry(REPORT, ts=5.0)
        assert entry["kind"] == HISTORY_KIND
        assert entry["ts"] == 5.0
        assert "python" in entry
        assert entry["metrics"] == flatten_bench(REPORT)


class TestCompare:
    def _history(self, *scales, tmp=None):
        return [history_entry(_report(s), ts=float(i))
                for i, s in enumerate(scales)]

    def test_no_regression_at_parity(self):
        deltas = compare_bench(_report(1.0), self._history(1.0, 1.0))
        assert regressions(deltas) == []

    def test_two_x_slowdown_is_caught(self):
        deltas = compare_bench(_report(2.0), self._history(1.0, 1.0, 1.0))
        names = {d.name for d in regressions(deltas)}
        assert "apps.jpeg.design_s" in names
        assert "service.batch_cold_s" in names
        assert "server.p99_ms" in names
        # non-timing metrics never gate, whatever their ratio
        assert "service.cache_speedup" not in names

    def test_baseline_is_median_not_mean(self):
        # one wild outlier run must not drag the baseline
        history = self._history(1.0, 1.0, 1.0, 100.0)
        deltas = compare_bench(_report(1.2), history)
        assert regressions(deltas) == []

    def test_speedup_never_regresses(self):
        deltas = compare_bench(_report(0.5), self._history(1.0, 1.0))
        assert regressions(deltas) == []

    def test_noise_floor_ungates_tiny_baselines(self):
        tiny = _report(1.0)
        tiny["apps"]["jpeg"]["design_s"] = 1e-6
        history = [history_entry(tiny, ts=0.0)]
        current = json.loads(json.dumps(tiny))
        current["apps"]["jpeg"]["design_s"] = 1e-5  # 10x but microseconds
        deltas = compare_bench(current, history)
        by_name = {d.name: d for d in deltas}
        assert not by_name["apps.jpeg.design_s"].gated
        assert regressions(deltas) == []

    def test_threshold_must_exceed_one(self):
        history = self._history(1.0)
        for bad in (1.0, 0.5, 0.0, -2.0):
            with pytest.raises((ConfigurationError, ValueError)):
                compare_bench(_report(1.0), history, threshold=bad)

    def test_metric_only_in_history_is_ignored(self):
        history = self._history(1.0)
        history[0]["metrics"]["gone.metric_s"] = 1.0
        deltas = compare_bench(_report(1.0), history)
        assert "gone.metric_s" not in {d.name for d in deltas}

    def test_delta_carries_history_series(self):
        deltas = compare_bench(_report(1.0), self._history(1.0, 2.0, 3.0))
        d = next(x for x in deltas if x.name == "server.p99_ms")
        assert isinstance(d, MetricDelta)
        assert list(d.history) == [4.0, 8.0, 12.0]


class TestRendering:
    def test_sparkline_shape(self):
        line = sparkline([1.0, 2.0, 3.0, 2.0])
        assert len(line) == 4
        assert line[0] != line[2]  # min and max get different blocks

    def test_sparkline_flat_and_empty(self):
        assert sparkline([]) == ""
        flat = sparkline([5.0, 5.0, 5.0])
        assert len(flat) == 3 and len(set(flat)) == 1

    def test_trend_table_marks_regressions(self):
        deltas = compare_bench(_report(2.0), [history_entry(_report(1.0))])
        table = render_trend_table(deltas, DEFAULT_THRESHOLD)
        assert "REGRESSED" in table
        assert "apps.jpeg.design_s" in table

    def _ratio_report(self, speedup: float) -> dict:
        doc = _report(1.0)
        doc["apps"]["jpeg"]["fastcore_speedup"] = speedup
        return doc

    def test_ratio_metrics_display_as_multipliers_not_info(self):
        """The satellite: throughput ratios are first-class rows —
        formatted as ``Nx`` with their own verdict — but never gate."""
        report = self._ratio_report(8.0)
        deltas = compare_bench(report, [history_entry(report)])
        table = render_trend_table(deltas, DEFAULT_THRESHOLD)
        row = next(l for l in table.splitlines()
                   if "fastcore_speedup" in l)
        assert "8.00x" in row
        assert row.rstrip().endswith("ratio")
        assert regressions(deltas) == []

    def test_dropped_speedup_is_called_out_but_still_not_gated(self):
        history = [history_entry(self._ratio_report(8.0))]
        deltas = compare_bench(self._ratio_report(2.0), history)
        table = render_trend_table(deltas, DEFAULT_THRESHOLD)
        row = next(l for l in table.splitlines()
                   if "fastcore_speedup" in l)
        assert "ratio (dropped)" in row
        assert regressions(deltas) == []

    def test_overhead_ratios_never_drop_flag(self):
        # "dropped" is a *speedup* notion; an overhead ratio falling is
        # good news and renders as a plain ratio row.
        report = _report(1.0)
        history = [history_entry(report)]
        shrunk = _report(1.0)
        shrunk["apps"]["jpeg"]["profiler_overhead"] = 0.1
        table = render_trend_table(
            compare_bench(shrunk, history), DEFAULT_THRESHOLD
        )
        row = next(l for l in table.splitlines()
                   if "profiler_overhead" in l)
        assert "dropped" not in row
        assert "0.10x" in row


class TestBenchCompareCli:
    """`repro bench --compare` end-to-end with a monkeypatched bench."""

    def _patch_bench(self, monkeypatch, scale):
        import repro.bench as bench_mod

        def fake_run_bench(apps, repeat, buckets, out=None,
                           sim_backend=None, **kwargs):
            return _report(scale)

        monkeypatch.setattr(bench_mod, "run_bench", fake_run_bench)
        monkeypatch.setattr(bench_mod, "render_bench",
                            lambda report: "bench (fake)")

    def test_first_run_records_baseline_and_passes(
        self, tmp_path, monkeypatch, capsys
    ):
        self._patch_bench(monkeypatch, 1.0)
        hist = tmp_path / "hist.jsonl"
        rc = cli_main(["bench", "--history", str(hist), "--compare"])
        assert rc == 0
        assert "recording a baseline" in capsys.readouterr().out
        assert len(load_history(hist)) == 1

    def test_unchanged_run_passes_and_appends(
        self, tmp_path, monkeypatch, capsys
    ):
        hist = tmp_path / "hist.jsonl"
        append_history(_report(1.0), hist, ts=1.0)
        self._patch_bench(monkeypatch, 1.0)
        rc = cli_main(["bench", "--history", str(hist), "--compare"])
        assert rc == 0
        assert "bench trends" in capsys.readouterr().out
        assert len(load_history(hist)) == 2

    def test_injected_2x_slowdown_exits_nonzero(
        self, tmp_path, monkeypatch, capsys
    ):
        hist = tmp_path / "hist.jsonl"
        append_history(_report(1.0), hist, ts=1.0)
        self._patch_bench(monkeypatch, 2.0)
        rc = cli_main(["bench", "--history", str(hist), "--compare"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "regressed" in err
        # the regressed run is still recorded — history is the log,
        # the exit code is the gate
        assert len(load_history(hist)) == 2

    def test_generous_threshold_tolerates_the_same_run(
        self, tmp_path, monkeypatch
    ):
        hist = tmp_path / "hist.jsonl"
        append_history(_report(1.0), hist, ts=1.0)
        self._patch_bench(monkeypatch, 2.0)
        rc = cli_main(["bench", "--history", str(hist), "--compare",
                       "--threshold", "4.0"])
        assert rc == 0

    def test_compare_requires_history(self, monkeypatch):
        self._patch_bench(monkeypatch, 1.0)
        rc = cli_main(["bench", "--compare"])
        assert rc == 1  # ConfigurationError -> CLI error path

    def test_threshold_requires_compare(self, monkeypatch):
        self._patch_bench(monkeypatch, 1.0)
        rc = cli_main(["bench", "--threshold", "2.0"])
        assert rc == 1

    def test_corrupt_history_is_a_loud_failure(
        self, tmp_path, monkeypatch
    ):
        hist = tmp_path / "hist.jsonl"
        hist.write_text("{broken\n")
        self._patch_bench(monkeypatch, 1.0)
        with pytest.raises((ValueError, ReproError)):
            cli_main(["bench", "--history", str(hist), "--compare"])
