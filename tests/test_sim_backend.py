"""Backend selection: resolution order, auto fallback, typed rejection.

The backend choice is a pure throughput knob — it travels *next to*
jobs (service argument, env var), never *on* them, so cache
fingerprints are backend-free. These tests pin the resolution order
(explicit argument → process default → ``REPRO_SIM_BACKEND`` → the
reference engine), the ``auto`` probe (fast iff numpy imports, proven
in a subprocess with numpy masked), and that every entry point rejects
unknown names with a typed :class:`~repro.errors.ConfigurationError`
before any work runs.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

import repro.sim.backend as backend_mod
from repro.errors import ConfigurationError
from repro.cli import main
from repro.sim.backend import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    ReproSimBackend,
    make_engine,
    resolve_backend,
    set_default_backend,
)
from repro.sim.fastcore.vector import numpy_available


@pytest.fixture(autouse=True)
def _clean_backend_state(monkeypatch):
    """Isolate the process default and env var per test."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    monkeypatch.setattr(backend_mod, "_default_backend", None)


class TestResolutionOrder:
    def test_default_is_reference(self):
        assert resolve_backend() == "reference"
        assert resolve_backend(None) == "reference"

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fast")
        set_default_backend("fast")
        assert resolve_backend("reference") == "reference"

    def test_process_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fast")
        set_default_backend("reference")
        assert resolve_backend() == "reference"
        set_default_backend(None)  # cleared → env applies again
        assert resolve_backend() == "fast"

    def test_env_var_applies_when_nothing_else_set(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fast")
        assert resolve_backend() == "fast"

    def test_empty_env_var_means_unset(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "")
        assert resolve_backend() == "reference"

    def test_backend_names_enumerate_the_enum(self):
        assert BACKEND_NAMES == ("reference", "fast", "auto")
        assert [b.value for b in ReproSimBackend] == list(BACKEND_NAMES)


class TestAutoProbe:
    def test_auto_matches_numpy_availability(self):
        expected = "fast" if numpy_available() else "reference"
        assert resolve_backend("auto") == expected

    def test_auto_falls_back_to_reference_without_numpy(self):
        # Mask numpy in a subprocess: an import-hook that raises makes
        # the probe fail, so ``auto`` must resolve to the reference
        # engine instead of exploding or silently picking fast.
        code = (
            # repro.apps needs numpy at import time, so import the
            # package first, *then* mask numpy and force a re-probe:
            # exactly the situation of a broken numpy install at the
            # moment the fast backend would first be selected.
            "import sys\n"
            "from repro.sim.backend import resolve_backend\n"
            "import repro.sim.fastcore.vector as vector\n"
            "class _Block:\n"
            "    def find_spec(self, name, path=None, target=None):\n"
            "        if name.split('.')[0] == 'numpy':\n"
            "            raise ImportError('numpy masked for test')\n"
            "        return None\n"
            "sys.meta_path.insert(0, _Block())\n"
            "for mod in [m for m in sys.modules if m.split('.')[0] == 'numpy']:\n"
            "    del sys.modules[mod]\n"
            "vector._PROBED = False\n"
            "vector._NUMPY = None\n"
            "assert vector.numpy_available() is False\n"
            "print(resolve_backend('auto'))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd="/root/repo",
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "reference"

    def test_make_engine_honors_resolution(self):
        from repro.sim.engine import Engine
        from repro.sim.fastcore.engine import FastEngine

        assert type(make_engine("reference")) is Engine
        assert type(make_engine("fast")) is FastEngine
        assert type(make_engine()) is Engine  # default → reference


class TestTypedRejection:
    """Unknown backend names fail loudly, before any simulation."""

    def test_resolve_rejects_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown simulator"):
            resolve_backend("bogus")

    def test_set_default_rejects_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown simulator"):
            set_default_backend("bogus")

    def test_env_var_typo_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "fastest")
        with pytest.raises(ConfigurationError, match="unknown simulator"):
            resolve_backend()

    def test_service_validates_at_construction(self):
        from repro.service import DesignService

        with pytest.raises(ConfigurationError, match="unknown simulator"):
            DesignService(sim_backend="bogus")

    def test_server_config_validates_at_construction(self):
        from repro.server import ServerConfig

        with pytest.raises(ConfigurationError, match="unknown simulator"):
            ServerConfig(sim_backend="bogus")

    def test_run_sweep_rejects_backend_on_injected_service(self):
        from repro.service import DesignService
        from repro.sweep import SweepGrid, run_sweep

        grid = SweepGrid(apps=["klt"], simulate=False)
        with pytest.raises(ConfigurationError, match="injected"):
            run_sweep(grid, service=DesignService(), sim_backend="fast")

    def test_cli_sweep_rejects_unknown_backend(self, capsys):
        code = main(["sweep", "--apps", "klt", "--sim-backend", "bogus"])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "unknown simulator backend" in err

    def test_cli_serve_rejects_unknown_backend(self, capsys):
        code = main([
            "serve", "--port", "0", "--sim-backend", "bogus",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "unknown simulator backend" in err

    def test_cli_bench_rejects_unknown_backend(self, capsys):
        code = main([
            "bench", "--apps", "klt", "--repeat", "1",
            "--sim-backend", "bogus",
        ])
        assert code == 1
        assert "unknown simulator backend" in capsys.readouterr().err


class TestBackendEquivalenceThroughTheService:
    """The cache-soundness argument: identical output either way."""

    def test_sweep_csv_byte_identical_across_backends(self):
        from repro.sweep import SweepGrid, run_sweep, to_csv

        grid = SweepGrid(
            apps=["klt"],
            param_grid={"bus_width_bytes": [4, 8]},
            simulate=True,
        )
        ref_csv = to_csv(run_sweep(grid, sim_backend="reference"))
        fast_csv = to_csv(run_sweep(grid, sim_backend="fast"))
        assert ref_csv == fast_csv
