"""Property-based fuzzing of Algorithm 1 and the simulator.

Random communication graphs (random topology, traffic, capability
flags) are pushed through the designer, the analytic model and the
discrete-event simulator; the invariants below must hold for *every*
graph, not just the paper's four applications:

* Table I consistency: senders on the NoC, receivers' memories
  reachable, host-touched memories on the bus;
* every kernel-to-kernel edge is carried by exactly one mechanism
  (shared memory, NoC, or host relay);
* the bill of materials is consistent with the plan topology;
* the proposed system is never slower than the baseline (analytic);
* the simulator terminates (no deadlock) and agrees directionally.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CommGraph, DesignConfig, KernelSpec, design_interconnect
from repro.core.analytic import AnalyticModel
from repro.core.plan import memory_node
from repro.core.topology import KernelAttach, MemoryAttach, ReceiveClass, SendClass
from repro.hw.resources import ComponentKind, ResourceCost
from repro.sim.systems import SystemParams, simulate_baseline, simulate_proposed

PARAMS = SystemParams()
THETA = PARAMS.theta_s_per_byte()


@st.composite
def comm_graphs(draw):
    n = draw(st.integers(2, 6))
    names = [f"k{i}" for i in range(n)]
    kernels = {}
    for name in names:
        kernels[name] = KernelSpec(
            name,
            tau_cycles=draw(st.integers(1_000, 500_000)),
            sw_cycles=draw(st.integers(10_000, 5_000_000)),
            parallelizable=draw(st.booleans()),
            streams_host_io=draw(st.booleans()),
            streams_kernel_input=draw(st.booleans()),
            resources=ResourceCost(
                draw(st.integers(100, 3000)), draw(st.integers(100, 3000))
            ),
        )
    kk = {}
    for i in range(n):
        for j in range(n):
            if i != j and draw(st.booleans()):
                kk[(names[i], names[j])] = draw(st.integers(1, 200_000))
    host_in = {
        name: draw(st.integers(0, 100_000))
        for name in names
        if draw(st.booleans())
    }
    host_out = {
        name: draw(st.integers(0, 100_000))
        for name in names
        if draw(st.booleans())
    }
    return CommGraph(
        kernels=kernels,
        kk_edges=kk,
        host_in={k: v for k, v in host_in.items() if v},
        host_out={k: v for k, v in host_out.items() if v},
    )


def design(graph, **kw):
    config = DesignConfig(
        theta_s_per_byte=THETA, stream_overhead_s=5e-6, **kw
    )
    return design_interconnect("fuzz", graph, config)


@settings(max_examples=80, deadline=None)
@given(graph=comm_graphs())
def test_every_edge_carried_exactly_once(graph):
    plan = design(graph)
    sm = {(l.producer, l.consumer) for l in plan.sharing}
    noc = {(p, c) for p, c, _ in plan.noc.edges} if plan.noc else set()
    assert sm.isdisjoint(noc)
    # sm + noc must cover the post-duplication graph's edges entirely
    # (relay edges only appear when the NoC is disabled).
    assert sm | noc == set(plan.graph.kk_edges)


@settings(max_examples=80, deadline=None)
@given(graph=comm_graphs())
def test_mapping_invariants(graph):
    plan = design(graph)
    residual_senders = {p for p, _, _ in (plan.noc.edges if plan.noc else ())}
    residual_receivers = {c for _, c, _ in (plan.noc.edges if plan.noc else ())}
    for name, m in plan.mappings.items():
        # Infeasible combination never produced.
        assert not (
            m.attach_kernel is KernelAttach.K1
            and m.attach_memory is MemoryAttach.M2
        )
        if name in residual_senders:
            assert m.on_noc
        if name in residual_receivers:
            assert m.memory_on_noc
        # A kernel with host traffic keeps its memory bus-reachable,
        # unless the host reaches it through a sharing crossbar.
        has_host = plan.graph.d_h_in(name) + plan.graph.d_h_out(name) > 0
        link = plan.shared_with(name)
        if has_host and link is None:
            assert m.attach_memory in (MemoryAttach.M1, MemoryAttach.M3)


@settings(max_examples=80, deadline=None)
@given(graph=comm_graphs())
def test_bom_matches_topology(graph):
    plan = design(graph)
    counts = plan.component_counts()
    assert counts[ComponentKind.BUS] == 1
    if plan.noc is None:
        assert ComponentKind.ROUTER not in counts
        assert ComponentKind.NOC_GLUE not in counts
    else:
        assert counts[ComponentKind.ROUTER] == plan.noc.router_count
        assert counts[ComponentKind.ROUTER] == len(
            plan.noc.placement.positions
        )
        assert counts[ComponentKind.NA_KERNEL] == len(plan.noc.kernel_nodes)
        assert counts[ComponentKind.NA_MEMORY] == len(plan.noc.memory_nodes)
        assert counts[ComponentKind.NOC_GLUE] == 1
        # Every NoC node has a router position; memories use mem: names.
        for k in plan.noc.kernel_nodes:
            assert k in plan.noc.placement.positions
        for k in plan.noc.memory_nodes:
            assert memory_node(k) in plan.noc.placement.positions
    assert counts.get(ComponentKind.CROSSBAR, 0) == sum(
        1 for l in plan.sharing if l.crossbar
    )


@settings(max_examples=80, deadline=None)
@given(graph=comm_graphs())
def test_classification_consistent_with_original_graph(graph):
    plan = design(graph, enable_sharing=False)
    # Without sharing the residual graph IS the (post-dup) graph, so the
    # stored classification must match direct reclassification.
    g = plan.graph
    for name, m in plan.mappings.items():
        expect_r = (
            ReceiveClass.R3
            if g.d_k_in(name) and g.d_h_in(name)
            else ReceiveClass.R1
            if g.d_k_in(name)
            else ReceiveClass.R2
        )
        expect_s = (
            SendClass.S3
            if g.d_k_out(name) and g.d_h_out(name)
            else SendClass.S1
            if g.d_k_out(name)
            else SendClass.S2
        )
        assert m.receive is expect_r
        assert m.send is expect_s


@settings(max_examples=60, deadline=None)
@given(graph=comm_graphs())
def test_analytic_proposed_never_slower(graph):
    plan = design(graph)
    model = AnalyticModel(graph, THETA, host_other_s=0.0)
    assert model.proposed(plan).kernels_s <= model.baseline().kernels_s + 1e-15


@settings(max_examples=40, deadline=None)
@given(graph=comm_graphs())
def test_simulator_terminates_and_is_sane(graph):
    """No deadlocks, positive makespan, traffic conservation."""
    plan = design(graph)
    base = simulate_baseline(graph, 0.0, PARAMS)
    prop = simulate_proposed(plan, 0.0, PARAMS)
    assert base.kernels_s > 0
    assert prop.kernels_s > 0
    # NoC moved exactly the bytes of the NoC-carried edges.
    expected_noc = sum(b for _, _, b in (plan.noc.edges if plan.noc else ()))
    assert prop.noc_bytes == expected_noc
    # The proposed system is at worst marginally slower than baseline
    # (pipelined segments add per-transaction overheads).
    assert prop.kernels_s <= base.kernels_s * 1.10 + 1e-9


@settings(max_examples=40, deadline=None)
@given(graph=comm_graphs())
def test_noc_only_uses_at_least_as_many_resources(graph):
    adaptive = design(graph)
    noc_only = design(graph, enable_sharing=False, enable_adaptive_mapping=False)
    ra = adaptive.noc.router_count if adaptive.noc else 0
    rn = noc_only.noc.router_count if noc_only.noc else 0
    assert ra <= rn
