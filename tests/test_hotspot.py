"""Tests for hotspot ranking and L_hw selection."""

from __future__ import annotations

import pytest

from repro.errors import ProfilingError
from repro.profiling import (
    CommunicationProfile,
    FunctionStats,
    rank_functions,
    select_hw_candidates,
)


def profile_with_work(work_map):
    fns = [FunctionStats(n, 1, 0, 0, w) for n, w in work_map.items()]
    return CommunicationProfile([], fns)


class TestRanking:
    def test_orders_by_work_descending(self):
        p = profile_with_work({"a": 1.0, "b": 5.0, "c": 3.0})
        r = rank_functions(p)
        assert [n for n, _, _ in r.ranking] == ["b", "c", "a"]

    def test_shares_sum_to_one(self):
        p = profile_with_work({"a": 1.0, "b": 3.0})
        r = rank_functions(p)
        assert sum(s for _, _, s in r.ranking) == pytest.approx(1.0)
        assert r.share("b") == pytest.approx(0.75)

    def test_zero_work_functions_dropped(self):
        p = profile_with_work({"a": 0.0, "b": 2.0})
        r = rank_functions(p)
        assert r.top(5) == ("b",)

    def test_entry_excluded(self):
        p = CommunicationProfile(
            [], [FunctionStats("__entry__", 1, 0, 0, 99.0),
                 FunctionStats("f", 1, 0, 0, 1.0)]
        )
        r = rank_functions(p)
        assert r.top(5) == ("f",)

    def test_empty_profile(self):
        r = rank_functions(profile_with_work({}))
        assert r.ranking == ()
        assert r.total_work == 0.0
        assert r.share("x") == 0.0

    def test_deterministic_tie_break_by_name(self):
        p = profile_with_work({"z": 2.0, "a": 2.0})
        r = rank_functions(p)
        assert [n for n, _, _ in r.ranking] == ["a", "z"]


class TestSelection:
    def test_respects_suitability_predicate(self):
        p = profile_with_work({"hot_io": 10.0, "hot_calc": 5.0})
        sel = select_hw_candidates(p, suitable=lambda n: "io" not in n)
        assert sel == ("hot_calc",)

    def test_max_kernels_cap(self):
        p = profile_with_work({"a": 4.0, "b": 3.0, "c": 2.0, "d": 1.0})
        assert select_hw_candidates(p, max_kernels=2) == ("a", "b")

    def test_min_work_share_cutoff(self):
        p = profile_with_work({"a": 98.0, "b": 1.0, "c": 1.0})
        sel = select_hw_candidates(p, min_work_share=0.05)
        assert sel == ("a",)

    def test_invalid_share_rejected(self):
        p = profile_with_work({"a": 1.0})
        with pytest.raises(ProfilingError):
            select_hw_candidates(p, min_work_share=1.5)

    def test_excludes_names(self):
        p = profile_with_work({"a": 3.0, "b": 1.0})
        assert select_hw_candidates(p, exclude=["a"]) == ("b",)
