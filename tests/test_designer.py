"""Tests for Algorithm 1 end-to-end (the designer) and the plan."""

from __future__ import annotations

import pytest

from repro.core import CommGraph, DesignConfig, KernelSpec, design_interconnect
from repro.core.plan import memory_node
from repro.core.topology import KernelAttach, MemoryAttach
from repro.errors import DesignError
from repro.hw.resources import ComponentKind, ResourceCost

THETA = 1.3e-9


def jpeg_like_graph():
    ks = [
        KernelSpec("dc", 50_000, 800_000, resources=ResourceCost(1000, 1000)),
        KernelSpec(
            "ac", 200_000, 3_000_000,
            parallelizable=True, streams_host_io=True,
            resources=ResourceCost(2000, 2000),
        ),
        KernelSpec(
            "dq", 80_000, 1_000_000,
            streams_kernel_input=True, resources=ResourceCost(800, 800),
        ),
        KernelSpec(
            "idct", 150_000, 2_500_000,
            streams_kernel_input=True, streams_host_io=True,
            resources=ResourceCost(1500, 1500),
        ),
    ]
    return CommGraph(
        kernels={k.name: k for k in ks},
        kk_edges={("dc", "dq"): 20_000, ("ac", "dq"): 120_000, ("dq", "idct"): 140_000},
        host_in={"dc": 8_000, "ac": 30_000, "idct": 2_000},
        host_out={"idct": 160_000},
    )


def config(**kw):
    return DesignConfig(theta_s_per_byte=THETA, stream_overhead_s=20e-6, **kw)


class TestFullDesign:
    @pytest.fixture()
    def plan(self):
        return design_interconnect("jpeg-like", jpeg_like_graph(), config())

    def test_duplicates_hottest_parallelizable(self, plan):
        applied = [d for d in plan.duplications if d.applied]
        assert [d.kernel for d in applied] == ["ac"]
        assert {"ac#0", "ac#1"} <= set(plan.graph.kernel_names())

    def test_shared_memory_pair(self, plan):
        assert len(plan.sharing) == 1
        link = plan.sharing[0]
        assert (link.producer, link.consumer) == ("dq", "idct")
        assert link.crossbar

    def test_mappings_follow_table1(self, plan):
        m = plan.mappings
        # dc receives host only, sends kernels only: {K2, M1}.
        assert m["dc"].attach_kernel is KernelAttach.K2
        assert m["dc"].attach_memory is MemoryAttach.M1
        # dq (after SM) receives from NoC, sends nothing residual: {K1, M3}.
        assert m["dq"].attach_kernel is KernelAttach.K1
        assert m["dq"].attach_memory is MemoryAttach.M3
        # idct is fully satisfied by the shared memory: {K1, M1}.
        assert m["idct"].attach_kernel is KernelAttach.K1
        assert m["idct"].attach_memory is MemoryAttach.M1

    def test_noc_contains_senders_and_target_memory(self, plan):
        noc = plan.noc
        assert noc is not None
        assert set(noc.kernel_nodes) == {"dc", "ac#0", "ac#1"}
        assert set(noc.memory_nodes) == {"dq"}
        assert noc.router_count == 4
        assert memory_node("dq") in noc.placement.positions

    def test_kept_edges_cover_all_kernel_traffic(self, plan):
        kept = set(plan.kept_edges())
        assert kept == set(plan.graph.kk_edges)

    def test_bom_counts(self, plan):
        counts = plan.component_counts()
        assert counts[ComponentKind.BUS] == 1
        assert counts[ComponentKind.CROSSBAR] == 1
        assert counts[ComponentKind.ROUTER] == 4
        assert counts[ComponentKind.NA_KERNEL] == 3
        assert counts[ComponentKind.NA_MEMORY] == 1
        assert counts[ComponentKind.NOC_GLUE] == 1

    def test_solution_label(self, plan):
        assert plan.solution_label() == "NoC, SM, P"

    def test_describe_mentions_everything(self, plan):
        text = plan.describe()
        assert "duplicated kernels : ac" in text
        assert "dq -> idct" in text
        assert "mesh" in text
        assert "solution" in text


class TestConfigVariants:
    def test_noc_only_attaches_everything(self):
        plan = design_interconnect(
            "x", jpeg_like_graph(), config().noc_only()
        )
        assert plan.sharing == ()
        noc = plan.noc
        assert noc is not None
        n_kernels = len(plan.graph.kernel_names())
        assert len(noc.kernel_nodes) == n_kernels
        assert len(noc.memory_nodes) == n_kernels
        assert noc.router_count == 2 * n_kernels

    def test_bus_only_is_pure_baseline(self):
        plan = design_interconnect("x", jpeg_like_graph(), config().bus_only())
        assert plan.noc is None
        assert plan.sharing == ()
        assert plan.pipeline == ()
        assert all(not d.applied for d in plan.duplications) or not plan.duplications
        assert plan.solution_label() == "Bus"
        assert plan.component_counts() == {ComponentKind.BUS: 1}

    def test_sharing_disabled_moves_pair_to_noc(self):
        plan = design_interconnect(
            "x", jpeg_like_graph(),
            config(enable_sharing=False),
        )
        assert plan.sharing == ()
        assert ("dq", "idct") in {(p, c) for p, c, _ in plan.noc.edges}

    def test_duplication_disabled(self):
        plan = design_interconnect(
            "x", jpeg_like_graph(), config(enable_duplication=False)
        )
        assert plan.duplications == ()
        assert "ac" in plan.graph.kernel_names()

    def test_pipelining_disabled(self):
        plan = design_interconnect(
            "x", jpeg_like_graph(), config(enable_pipelining=False)
        )
        assert plan.pipeline == ()

    def test_invalid_theta_rejected(self):
        with pytest.raises(DesignError):
            DesignConfig(theta_s_per_byte=0.0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(DesignError):
            DesignConfig(theta_s_per_byte=THETA, stream_overhead_s=-1.0)


class TestMemoryAccessors:
    def test_mux_for_overloaded_memories(self):
        plan = design_interconnect("x", jpeg_like_graph(), config())
        muxed = set(plan.mux_kernels())
        # dc: core + host + kernel NA = 3 accessors.
        assert "dc" in muxed
        # idct: core + crossbar (carrying host traffic) = 2, no mux.
        assert "idct" not in muxed

    def test_accessor_listing(self):
        plan = design_interconnect("x", jpeg_like_graph(), config())
        acc = plan.memory_accessors("dq")
        assert "core" in acc
        assert "memory_na" in acc  # M3
        assert "crossbar" in acc  # SM producer side


class TestIsolatedKernels:
    def test_kernel_without_any_kk_traffic_stays_on_bus(self):
        ks = [KernelSpec("solo", 100.0, 800.0)]
        g = CommGraph(
            kernels={k.name: k for k in ks},
            host_in={"solo": 100},
            host_out={"solo": 100},
        )
        plan = design_interconnect("solo", g, config())
        assert plan.noc is None
        assert plan.solution_label() in ("Bus", "P")
        m = plan.mappings["solo"]
        assert m.attach_kernel is KernelAttach.K1
        assert m.attach_memory is MemoryAttach.M1
