"""Tests for repro.analyze — the static diagnostics engine (repro lint).

Covers the acceptance criteria of the analyzer:

* all four paper applications lint clean (zero error diagnostics);
* the CDG deadlock proof passes on every mesh-XY placement and reports
  a concrete golden cycle witness on an unrestricted torus;
* ``--sim-crosscheck`` confirms every static bandwidth bound against
  the discrete-event simulator with zero false errors;

plus per-rule firing tests on tampered inputs, report serialization,
SARIF output, and the flow/service/fuzz integrations.
"""

import dataclasses
import json

import pytest

from repro.analyze import (
    CROSSCHECK_RULE,
    AnalysisReport,
    Diagnostic,
    Severity,
    all_rules,
    analyze_deadlock,
    analyze_plan,
    bus_demand_bytes,
    crosscheck_plan,
    get_rule,
    lane_bounds,
    report_from_dict,
    to_sarif,
)
from repro.analyze.engine import build_context
from repro.apps import fit_application, get_application
from repro.apps.registry import APP_NAMES
from repro.cli import main
from repro.core.commgraph import CommGraph
from repro.core.designer import DesignConfig, design_interconnect
from repro.core.mapping import KernelAttach, MemoryAttach
from repro.flow import run_experiment
from repro.profiling.quad import CommunicationProfile, ProfileEdge
from repro.sim.systems import SystemParams


@pytest.fixture(scope="module")
def designed():
    """Designed plans for all four paper applications."""
    params = SystemParams()
    theta = params.theta_s_per_byte()
    out = {}
    for name in APP_NAMES:
        fitted = fit_application(get_application(name), theta)
        config = DesignConfig(
            theta_s_per_byte=theta,
            stream_overhead_s=fitted.stream_overhead_s,
        )
        out[name] = (design_interconnect(name, fitted.graph, config), params)
    return out


# -- acceptance ---------------------------------------------------------------


class TestAcceptance:
    @pytest.mark.parametrize("app", APP_NAMES)
    def test_paper_apps_lint_clean(self, designed, app):
        plan, params = designed[app]
        report = analyze_plan(plan, params)
        assert report.ok, [str(d) for d in report.diagnostics]
        assert report.counts()["error"] == 0

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_crosscheck_confirms_all_bounds(self, designed, app):
        plan, params = designed[app]
        found = crosscheck_plan(plan, params)
        errors = [d for d in found if d.severity is Severity.ERROR]
        assert errors == [], [str(d) for d in errors]
        assert len(found) == 1
        assert found[0].rule == CROSSCHECK_RULE
        assert "confirms" in found[0].message
        assert found[0].evidence["confirmed"] >= 2

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_mesh_xy_placements_deadlock_free(self, designed, app):
        plan, _ = designed[app]
        if plan.noc is None:
            pytest.skip(f"{app} designs without a NoC")
        p = plan.noc.placement
        assert not p.torus
        analysis = analyze_deadlock(p.width, p.height, p.torus)
        assert analysis.deadlock_free
        assert analysis.cycle_as_strings() == []

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_noc_apps_carry_the_routing_proof(self, designed, app):
        plan, params = designed[app]
        report = analyze_plan(plan, params)
        proofs = report.by_rule("N001")
        if plan.noc is None:
            assert proofs == ()
        else:
            assert len(proofs) == 1
            assert proofs[0].severity is Severity.INFO
            assert "deadlock-free" in proofs[0].message


# -- channel dependency graph (satellite: torus coverage) ---------------------


class TestChannelDependencyGraph:
    @pytest.mark.parametrize(
        "width,height", [(2, 2), (3, 2), (4, 4), (5, 5), (5, 1)]
    )
    def test_mesh_xy_is_always_acyclic(self, width, height):
        assert analyze_deadlock(width, height, torus=False).deadlock_free

    def test_golden_cycle_witness_on_4_ring_torus(self):
        analysis = analyze_deadlock(4, 1, torus=True)
        assert not analysis.deadlock_free
        assert analysis.cycle_as_strings() == [
            "(0, 0)->(1, 0)",
            "(1, 0)->(2, 0)",
            "(2, 0)->(3, 0)",
            "(3, 0)->(0, 0)",
        ]

    def test_golden_cycle_witness_on_4x4_torus(self):
        analysis = analyze_deadlock(4, 4, torus=True)
        assert not analysis.deadlock_free
        # Deterministic DFS: the witness is the first column's y-ring.
        assert analysis.cycle_as_strings() == [
            "(0, 0)->(0, 1)",
            "(0, 1)->(0, 2)",
            "(0, 2)->(0, 3)",
            "(0, 3)->(0, 0)",
        ]

    def test_small_torus_rings_are_acyclic(self):
        # Rings of size <= 3 route every hop as the single shortest
        # step; no two consecutive same-direction wrap links exist.
        assert analyze_deadlock(3, 2, torus=True).deadlock_free
        assert analyze_deadlock(2, 2, torus=True).deadlock_free

    def test_designed_torus_plan_keeps_the_proof(self):
        # fluid's 3x2 torus is still provably deadlock-free; N001 must
        # say so rather than pattern-match "torus => cyclic".
        params = SystemParams()
        theta = params.theta_s_per_byte()
        fitted = fit_application(get_application("fluid"), theta)
        config = DesignConfig(
            theta_s_per_byte=theta,
            stream_overhead_s=fitted.stream_overhead_s,
            noc_topology="torus",
        )
        plan = design_interconnect("fluid", fitted.graph, config)
        assert plan.noc is not None and plan.noc.placement.torus
        report = analyze_plan(plan, params)
        proofs = report.by_rule("N001")
        assert len(proofs) == 1
        assert proofs[0].severity is Severity.INFO

    def test_wide_torus_placement_downgrades_to_warning(self, designed):
        plan, params = designed["canny"]
        assert plan.noc is not None
        placement = dataclasses.replace(
            plan.noc.placement, width=4, torus=True
        )
        tampered = dataclasses.replace(
            plan, noc=dataclasses.replace(plan.noc, placement=placement)
        )
        report = analyze_plan(tampered, params)
        proofs = report.by_rule("N001")
        assert len(proofs) == 1
        # store-and-forward tolerates the cycle: warning, not error.
        assert proofs[0].severity is Severity.WARNING
        assert proofs[0].evidence["cycle"]

    def test_wormhole_on_cyclic_cdg_is_an_error(self, designed):
        plan, params = designed["canny"]
        placement = dataclasses.replace(
            plan.noc.placement, width=4, torus=True
        )
        ctx = build_context(
            dataclasses.replace(
                plan, noc=dataclasses.replace(plan.noc, placement=placement)
            ),
            params=dataclasses.replace(params, noc_transport="wormhole"),
        )
        found = get_rule("N001").fn(ctx)
        assert [d.severity for d in found] == [Severity.ERROR]


# -- per-rule firing on tampered inputs ---------------------------------------


def _with_graph(plan, graph):
    return dataclasses.replace(plan, graph=graph)


class TestGraphRules:
    def test_g001_dead_kernel(self, designed):
        plan, params = designed["klt"]
        spec = next(iter(plan.graph.kernels.values()))
        idle = dataclasses.replace(spec, name="idle")
        graph = CommGraph(
            kernels={**plan.graph.kernels, "idle": idle},
            kk_edges=dict(plan.graph.kk_edges),
            host_in=dict(plan.graph.host_in),
            host_out=dict(plan.graph.host_out),
        )
        report = analyze_plan(_with_graph(plan, graph), params)
        found = report.by_rule("G001")
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING
        assert found[0].evidence["kernel"] == "idle"

    def test_g002_self_edge(self, designed):
        # CommGraph's constructor rejects self-edges, so the rule can
        # only meet one through a hand-built context (e.g. a plan
        # deserialized from a tampered JSON document).
        plan, params = designed["klt"]
        graph = CommGraph.__new__(CommGraph)
        object.__setattr__(graph, "kernels", dict(plan.graph.kernels))
        object.__setattr__(
            graph,
            "kk_edges",
            {**plan.graph.kk_edges,
             ("track_features", "track_features"): 64},
        )
        object.__setattr__(graph, "host_in", dict(plan.graph.host_in))
        object.__setattr__(graph, "host_out", dict(plan.graph.host_out))
        ctx = build_context(plan, params)
        found = get_rule("G002").fn(dataclasses.replace(ctx, graph=graph))
        assert [d.severity for d in found] == [Severity.ERROR]
        assert "track_features->track_features" in found[0].path

    def test_g003_reports_host_serialization_floor(self, designed):
        plan, params = designed["canny"]
        report = analyze_plan(plan, params)
        found = report.by_rule("G003")
        assert len(found) == 1
        assert found[0].path == "graph.host"
        assert found[0].evidence["host_bytes"] > 0

    def test_g004_uma_contradiction(self, designed):
        plan, params = designed["klt"]
        profile = CommunicationProfile(
            edges=[ProfileEdge("a", "b", bytes=128, umas=0)],
            functions=[],
        )
        report = analyze_plan(plan, params, profile=profile)
        found = report.by_rule("G004")
        assert len(found) == 1
        assert "zero unique memory addresses" in found[0].message

    def test_g005_hints_on_declined_pairs(self, designed):
        plan, params = designed["canny"]
        found = analyze_plan(plan, params).by_rule("G005")
        assert found
        assert all(d.severity is Severity.HINT for d in found)


class TestPlanRules:
    def test_p001_covers_bus_and_every_noc_link(self, designed):
        plan, params = designed["canny"]
        found = analyze_plan(plan, params).by_rule("P001")
        paths = {d.path for d in found}
        assert "lanes.bus" in paths
        bounds = lane_bounds(plan, params)
        assert len(found) == 1 + len(bounds.link_loads)

    def test_p002_sharing_byte_mismatch(self, designed):
        plan, params = designed["klt"]
        assert plan.sharing
        link = plan.sharing[0]
        tampered = dataclasses.replace(
            plan,
            sharing=(dataclasses.replace(link, bytes=link.bytes + 1),),
        )
        report = analyze_plan(tampered, params)
        errors = report.by_rule("P002")
        assert errors and all(
            d.severity is Severity.ERROR for d in errors
        )

    def test_p003_infeasible_mapping(self, designed):
        plan, params = designed["klt"]
        name, mapping = next(iter(plan.mappings.items()))
        tampered = dataclasses.replace(
            plan,
            mappings={
                **plan.mappings,
                name: dataclasses.replace(
                    mapping,
                    attach_kernel=KernelAttach.K1,
                    attach_memory=MemoryAttach.M2,
                ),
            },
        )
        report = analyze_plan(tampered, params)
        errors = report.by_rule("P003")
        assert errors
        assert any("infeasible" in d.message.lower() for d in errors)

    def test_p003_unmapped_kernel(self, designed):
        plan, params = designed["klt"]
        mappings = dict(plan.mappings)
        mappings.pop(next(iter(mappings)))
        report = analyze_plan(
            dataclasses.replace(plan, mappings=mappings), params
        )
        assert any(
            d.severity is Severity.ERROR for d in report.by_rule("P003")
        )

    def test_p004_applied_duplication_with_no_gain(self, designed):
        plan, params = designed["klt"]
        assert plan.duplications
        bad = dataclasses.replace(
            plan.duplications[0], applied=True, delta_dp_seconds=-1e-6
        )
        report = analyze_plan(
            dataclasses.replace(
                plan, duplications=(bad,) + plan.duplications[1:]
            ),
            params,
        )
        assert any(
            d.severity is Severity.ERROR for d in report.by_rule("P004")
        )

    def test_p004_reports_utilization_when_fitting(self, designed):
        plan, params = designed["canny"]
        found = analyze_plan(plan, params).by_rule("P004")
        fit = [d for d in found if d.path == "resources"]
        assert len(fit) == 1
        assert fit[0].severity is Severity.HINT

    def test_p005_scores_placement(self, designed):
        plan, params = designed["canny"]
        found = analyze_plan(plan, params).by_rule("P005")
        assert len(found) == 1
        assert 0.0 < found[0].evidence["efficiency"] <= 1.0

    def test_p006_phantom_noc_edge(self, designed):
        plan, params = designed["canny"]
        assert plan.noc is not None
        kernels = list(plan.graph.kernel_names())
        tampered = dataclasses.replace(
            plan,
            noc=dataclasses.replace(
                plan.noc,
                edges=plan.noc.edges + ((kernels[0], kernels[-1], 64),),
            ),
        )
        report = analyze_plan(tampered, params)
        assert any(
            d.severity is Severity.ERROR for d in report.by_rule("P006")
        )


class TestNocRules:
    def test_n002_reports_load_balance(self, designed):
        plan, params = designed["canny"]
        found = analyze_plan(plan, params).by_rule("N002")
        assert len(found) == 1
        assert found[0].evidence["max_channel_load"] > 0

    def test_n003_invalid_link_width(self, designed):
        plan, params = designed["canny"]
        ctx = build_context(
            plan, dataclasses.replace(params, noc_link_width_bytes=0)
        )
        found = get_rule("N003").fn(ctx)
        assert [d.severity for d in found] == [Severity.ERROR]
        assert found[0].path == "noc.params"

    def test_n003_packet_smaller_than_phit(self, designed):
        plan, params = designed["canny"]
        ctx = build_context(
            plan,
            dataclasses.replace(
                params, noc_link_width_bytes=8, noc_max_packet_bytes=4
            ),
        )
        found = get_rule("N003").fn(ctx)
        assert [d.severity for d in found] == [Severity.ERROR]

    def test_rules_skip_nocless_plans(self, designed):
        plan, params = designed["klt"]
        report = analyze_plan(plan, params)
        for rule in ("N001", "N002", "P005"):
            assert report.by_rule(rule) == ()


# -- crosscheck adversarial ---------------------------------------------------


class TestCrosscheck:
    def test_tampered_bus_bound_is_refuted(self, designed):
        plan, params = designed["klt"]
        bounds = lane_bounds(plan, params)
        inflated = dataclasses.replace(
            bounds, bus_bytes=bounds.bus_bytes + 4096
        )
        found = crosscheck_plan(plan, params, bounds=inflated)
        errors = [d for d in found if d.severity is Severity.ERROR]
        assert errors, "inflated static bound must be refuted"
        assert all(d.rule == CROSSCHECK_RULE for d in errors)

    def test_bus_demand_matches_simulated_bytes(self, designed):
        # The static bus demand is exact, not just a bound — the
        # crosscheck asserts byte equality, so pin the helper too.
        from repro.sim.systems import simulate_proposed

        for app in APP_NAMES:
            plan, params = designed[app]
            components = {}
            simulate_proposed(
                plan, 0.0, params, components_out=components
            )
            assert components["bus"].bytes_moved == bus_demand_bytes(plan)


# -- report & serialization ---------------------------------------------------


class TestReport:
    def test_severity_ordering(self):
        assert Severity.ERROR.rank > Severity.WARNING.rank
        assert Severity.WARNING.rank > Severity.INFO.rank
        assert Severity.INFO.rank > Severity.HINT.rank
        assert Severity.ERROR.at_least(Severity.WARNING)
        assert not Severity.HINT.at_least(Severity.INFO)

    def test_report_round_trip(self, designed):
        plan, params = designed["canny"]
        report = analyze_plan(plan, params)
        doc = report.to_dict()
        again = report_from_dict(doc)
        assert again.app == report.app
        assert again.counts() == report.counts()
        assert again.to_dict() == doc

    def test_report_render_mentions_counts_and_fixes(self, designed):
        plan, params = designed["canny"]
        report = analyze_plan(plan, params)
        text = report.render()
        assert text.splitlines()[0].startswith("lint canny:")
        assert "0 error" in text
        # Suggestions render as "fix:" lines.
        flagged = report.extended(
            [
                Diagnostic(
                    rule="X999",
                    severity=Severity.WARNING,
                    path="test",
                    message="synthetic",
                    suggestion="do the thing",
                )
            ]
        )
        rendered = flagged.render()
        assert "fix: do the thing" in rendered
        # Severity sorts first: the warning leads the findings.
        assert rendered.splitlines()[1].lstrip().startswith("warning")

    def test_extended_appends_diagnostics(self, designed):
        plan, params = designed["klt"]
        report = analyze_plan(plan, params)
        extra = Diagnostic(
            rule="X999",
            severity=Severity.ERROR,
            path="test",
            message="synthetic",
        )
        grown = report.extended([extra])
        assert not grown.ok
        assert report.ok  # original untouched
        assert grown.counts()["error"] == 1

    def test_at_least_thresholds(self, designed):
        plan, params = designed["klt"]
        report = analyze_plan(plan, params)
        assert not report.at_least(Severity.WARNING)
        assert report.at_least(Severity.INFO)
        assert report.at_least(Severity.HINT)


class TestSarif:
    def test_sarif_document_shape(self, designed):
        reports = [
            analyze_plan(plan, params)
            for plan, params in designed.values()
        ]
        doc = to_sarif(reports)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {r.id for r in all_rules()} <= rule_ids
        assert CROSSCHECK_RULE in rule_ids
        assert len(run["results"]) == sum(
            len(r.diagnostics) for r in reports
        )
        levels = {r["level"] for r in run["results"]}
        assert levels <= {"error", "warning", "note"}


# -- integrations -------------------------------------------------------------


class TestIntegrations:
    def test_run_experiment_lint_flag(self):
        result = run_experiment("klt", lint=True)
        assert isinstance(result.lint, AnalysisReport)
        assert result.lint.ok
        assert run_experiment("klt").lint is None

    def test_analyzer_check_feeds_the_fuzz_oracle(self, designed):
        from repro.verify import STATIC_ANALYSIS, analyzer_check

        plan, params = designed["canny"]
        assert analyzer_check(plan, params) == []
        kernels = list(plan.graph.kernel_names())
        tampered = dataclasses.replace(
            plan,
            noc=dataclasses.replace(
                plan.noc,
                edges=plan.noc.edges + ((kernels[0], kernels[-1], 64),),
            ),
        )
        violations = analyzer_check(tampered, params)
        assert violations
        assert all(v.check == STATIC_ANALYSIS for v in violations)

    def test_service_persists_lint_reports(self, tmp_path):
        from repro.service import DesignService
        from repro.service.jobs import DesignJob

        service = DesignService(jobs=1, lint_dir=tmp_path / "lints")
        result = service.submit(DesignJob(app="jpeg"))
        assert result.lint is not None and result.lint["ok"]
        files = list((tmp_path / "lints").glob("*.lint.json"))
        assert len(files) == 1
        doc = json.loads(files[0].read_text())
        assert doc["kind"] == "lint-report"
        assert doc["fingerprint"] == result.fingerprint
        assert doc["report"]["app"] == "jpeg"
        hit = service.submit(DesignJob(app="jpeg"))
        assert hit.cached and hit.lint is None
        assert len(list((tmp_path / "lints").glob("*.lint.json"))) == 1


# -- CLI ----------------------------------------------------------------------


class TestCli:
    def test_lint_single_app_clean(self, capsys):
        assert main(["lint", "klt"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("lint klt:")

    def test_lint_needs_exactly_one_target(self, capsys):
        assert main(["lint"]) == 1
        assert main(["lint", "klt", "--all"]) == 1

    def test_lint_json_all(self, capsys):
        assert main(["lint", "--all", "--json"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert [d["app"] for d in docs] == list(APP_NAMES)
        assert all(d["kind"] == "lint-report" for d in docs)

    def test_lint_fail_on_thresholds(self, capsys):
        # klt lints clean of errors/warnings but has info+hint findings.
        assert main(["lint", "klt", "--fail-on", "error"]) == 0
        assert main(["lint", "klt", "--fail-on", "info"]) == 1
        assert main(["lint", "klt", "--fail-on", "never"]) == 0

    def test_lint_sarif_artifact(self, tmp_path, capsys):
        out = tmp_path / "lint.sarif"
        assert main(
            ["lint", "--all", "--sim-crosscheck", "--sarif", str(out)]
        ) == 0
        doc = json.loads(out.read_text())
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        confirmations = [
            r for r in results if r["ruleId"] == CROSSCHECK_RULE
        ]
        assert len(confirmations) == len(APP_NAMES)

    def test_lint_crosscheck_adds_confirmation(self, capsys):
        assert main(["lint", "fluid", "--sim-crosscheck", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        rules = {d["rule"] for d in doc["diagnostics"]}
        assert CROSSCHECK_RULE in rules
