"""Tests for ``repro.obs.runtime``: trace context, event log, debug.

Covers the W3C traceparent round-trip and tolerant parsing, the typed
structured event log (ring, sink, sanitization, null object), the
``render_top`` dashboard renderer, and the consistent-snapshot
guarantee of ``MetricsRegistry`` under concurrent scrapes.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.obs.runtime import (
    DEFAULT_TENANT,
    EVENT_KINDS,
    NULL_LOG,
    EventLog,
    NullEventLog,
    TraceContext,
    new_trace_context,
    parse_traceparent,
)
from repro.obs.runtime.debug import render_top
from repro.service.metrics import MetricsRegistry


class TestTraceContext:
    def test_new_context_shape(self):
        ctx = new_trace_context()
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16
        int(ctx.trace_id, 16)  # both are hex
        int(ctx.span_id, 16)
        assert ctx.sampled

    def test_traceparent_roundtrip(self):
        ctx = new_trace_context()
        parsed = parse_traceparent(ctx.to_traceparent())
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id
        assert parsed.sampled == ctx.sampled

    def test_child_keeps_trace_id_fresh_span(self):
        ctx = new_trace_context()
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id

    def test_unsampled_flag(self):
        header = f"00-{'a' * 32}-{'b' * 16}-00"
        parsed = parse_traceparent(header)
        assert parsed is not None and not parsed.sampled

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-zz-bb-01",                         # non-hex ids
        f"00-{'0' * 32}-{'b' * 16}-01",        # all-zero trace id
        f"00-{'a' * 32}-{'0' * 16}-01",        # all-zero span id
        f"00-{'a' * 31}-{'b' * 16}-01",        # short trace id
        f"ff-{'a' * 32}-{'b' * 16}-01",        # forbidden version
        f"00-{'a' * 32}-{'b' * 16}-01-extra",  # v00 must be 4 parts
        f"00-{'a' * 32}-{'b' * 16}",           # missing flags
        42,                                    # not a string at all
    ])
    def test_malformed_headers_parse_to_none(self, header):
        assert parse_traceparent(header) is None

    def test_parse_is_case_tolerant_on_input(self):
        header = f"00-{'A' * 32}-{'b' * 16}-01"
        parsed = parse_traceparent(header)
        assert parsed is not None
        assert parsed.trace_id == "a" * 32


class TestEventLog:
    def test_emit_and_read_back(self):
        log = EventLog(capacity=8)
        event = log.emit("cache_hit", trace_id="t1", tenant="team-a",
                         app="jpeg")
        assert event is not None
        assert event.kind == "cache_hit"
        assert event.trace_id == "t1"
        assert event.fields == {"app": "jpeg"}
        assert [e.kind for e in log.events()] == ["cache_hit"]

    def test_unknown_kind_is_loud(self):
        log = EventLog(capacity=8)
        with pytest.raises(ConfigurationError) as err:
            log.emit("made_up_kind")
        assert "made_up_kind" in str(err.value)

    def test_ring_trims_to_capacity(self):
        log = EventLog(capacity=3)
        for i in range(10):
            log.emit("cache_miss", trace_id=f"t{i}")
        events = log.events()
        assert len(events) == 3
        assert [e.trace_id for e in events] == ["t7", "t8", "t9"]
        # counts survive the trim — they are totals, not ring contents
        assert log.counts()["cache_miss"] == 10

    def test_tail(self):
        log = EventLog(capacity=16)
        for i in range(5):
            log.emit("batch_flush", size=i)
        assert [e.fields["size"] for e in log.tail(2)] == [3, 4]

    def test_tenant_is_sanitized(self):
        log = EventLog(capacity=4)
        event = log.emit("quota_reject", tenant="evil\nteam\x00")
        assert event is not None
        assert event.tenant == "evilteam"

    def test_empty_tenant_falls_back_to_default(self):
        log = EventLog(capacity=4)
        event = log.emit("request_start", tenant="\x00\x01")
        assert event is not None
        assert event.tenant == DEFAULT_TENANT

    def test_hostile_field_values_are_scrubbed(self):
        log = EventLog(capacity=4)
        event = log.emit("request_finish", route="/x\r\ny", big="a" * 999)
        assert event is not None
        assert "\n" not in event.fields["route"]
        assert len(event.fields["big"]) <= 256

    def test_jsonl_sink(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(capacity=4, sink=str(path))
        log.emit("drain_begin", trace_id="tid")
        log.emit("drain_done", clean=True)
        log.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [d["kind"] for d in lines] == ["drain_begin", "drain_done"]
        assert lines[0]["trace_id"] == "tid"
        assert lines[1]["fields"]["clean"] is True

    def test_to_jsonl_matches_events(self):
        log = EventLog(capacity=4)
        log.emit("pool_recycle", reason="broken")
        docs = [json.loads(l) for l in log.to_jsonl().splitlines()]
        assert docs == [e.as_dict() for e in log.events()]

    def test_metric_counts_use_metric_key_escaping(self):
        log = EventLog(capacity=4)
        log.emit("cache_hit")
        log.emit("cache_hit")
        counts = log.metric_counts()
        assert counts['runtime_events{kind="cache_hit"}'] == 2

    def test_event_kinds_is_closed_and_sorted_emits_work(self):
        log = EventLog(capacity=len(EVENT_KINDS))
        for kind in sorted(EVENT_KINDS):
            assert log.emit(kind) is not None
        assert sum(log.counts().values()) == len(EVENT_KINDS)

    def test_concurrent_emitters_lose_nothing(self):
        log = EventLog(capacity=10_000)
        def hammer():
            for _ in range(200):
                log.emit("cache_miss")
        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert log.counts()["cache_miss"] == 8 * 200
        seqs = [e.seq for e in log.events()]
        assert seqs == sorted(seqs)


class TestNullEventLog:
    def test_null_log_is_disabled_and_inert(self):
        assert isinstance(NULL_LOG, NullEventLog)
        assert not NULL_LOG.enabled
        assert NULL_LOG.emit("cache_hit", trace_id="x") is None
        assert NULL_LOG.events() == ()
        assert NULL_LOG.counts() == {}
        assert NULL_LOG.metric_counts() == {}

    def test_null_log_swallows_unknown_kinds(self):
        # Disabled telemetry must never be the thing that raises.
        assert NULL_LOG.emit("not_a_kind") is None

    def test_service_results_identical_with_and_without_log(self):
        """The log observes; it must not perturb designed results."""
        from repro.service import DesignJob, DesignService

        job = DesignJob(app="klt", simulate=False)
        with DesignService(jobs=1) as silent:
            baseline = silent.submit(job).summary
        log = EventLog(capacity=64)
        with DesignService(jobs=1, events=log) as observed:
            traced = observed.submit(job).summary
        assert traced == baseline
        assert log.counts().get("cache_miss", 0) >= 1


class TestTraceThreading:
    def test_submit_many_validates_trace_id_length(self):
        from repro.service import DesignJob, DesignService

        with DesignService(jobs=1) as service:
            with pytest.raises(ServiceError):
                service.submit_many(
                    [DesignJob(app="klt", simulate=False)],
                    trace_ids=["a", "b"],
                )

    def test_job_span_carries_trace_id(self):
        from repro.obs.trace import Tracer
        from repro.service import DesignJob, DesignService

        tracer = Tracer()
        with DesignService(jobs=1, tracer=tracer) as service:
            service.submit_many(
                [DesignJob(app="klt", simulate=False)],
                trace_ids=["feedbeef" * 4],
            )
        jobs = [e for e in tracer.events if e.name == "job"]
        assert jobs and jobs[0].args["trace_id"] == "feedbeef" * 4


class TestRenderTop:
    DOC = {
        "kind": "debug-response",
        "trace_id": "t" * 32,
        "debug": {
            "uptime_s": 12.5,
            "inflight_requests": [
                {"trace_id": "a" * 32, "route": "/v1/design",
                 "tenant": "team-a", "age_s": 0.25},
            ],
            "admission": {
                "inflight": 2, "max_inflight": 8,
                "queue_depth": 1, "max_queue": 32,
                "capacity": 40, "rejected": 3, "draining": False,
                "latency_ewma_s": 0.004,
            },
            "batcher": {"pending": 1, "inflight_flushes": 1,
                        "window_s": 0.002, "max_batch": 16},
            "tenants": {"team-a": {"remaining": 20.0, "burst": 100.0,
                                   "rate": 50.0}},
            "cache": {"hits": 5, "misses": 4},
            "service": {"jobs_submitted": 9, "jobs_completed": 9,
                        "jobs_coalesced": 0, "jobs_joined": 0,
                        "jobs_failed": 0, "last_mode": "serial"},
            "events": {
                "counts": {"request_start": 9},
                "recent": [
                    {"seq": 1, "ts": 1.0, "kind": "request_start",
                     "trace_id": "a" * 32, "route": "/v1/design"},
                ],
            },
        },
    }

    def test_renders_every_section(self):
        screen = render_top(self.DOC)
        assert "repro top" in screen
        assert "serving" in screen
        assert "/v1/design" in screen
        assert "team-a" in screen
        assert "request_start" in screen

    def test_accepts_bare_debug_body(self):
        screen = render_top(self.DOC["debug"])
        assert "repro top" in screen

    def test_draining_state_is_visible(self):
        doc = json.loads(json.dumps(self.DOC))
        doc["debug"]["admission"]["draining"] = True
        assert "DRAINING" in render_top(doc)

    def test_exemplar_lines_from_metrics_text(self):
        metrics = (
            "# TYPE repro_http_request_last_seconds gauge\n"
            'repro_http_request_last_seconds{route="/v1/design",'
            'trace_id="abc"} 0.001\n'
        )
        screen = render_top(self.DOC, metrics_text=metrics)
        assert 'route="/v1/design"' in screen

    def test_degrades_on_missing_sections(self):
        assert "repro top" in render_top({})


class TestConsistentScrape:
    def test_snapshot_is_consistent_under_concurrent_observe(self):
        """Regression: snapshot() once re-read live timer lists after
        releasing the lock, so a concurrent observe() could mutate a
        list mid-``sorted`` or interleave half-updated series."""
        registry = MetricsRegistry()
        stop = threading.Event()
        errors: list = []

        def writer():
            i = 0
            while not stop.is_set():
                registry.observe("lat", float(i % 100) / 1000.0)
                registry.incr("hits")
                i += 1

        def scraper():
            try:
                for _ in range(200):
                    snap = registry.snapshot()
                    stats = snap["timers"].get("lat")
                    if stats and stats["count"]:
                        assert stats["p50_s"] <= stats["p99_s"]
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        writers = [threading.Thread(target=writer) for _ in range(4)]
        scrapers = [threading.Thread(target=scraper) for _ in range(2)]
        for t in writers + scrapers:
            t.start()
        for t in scrapers:
            t.join()
        stop.set()
        for t in writers:
            t.join()
        assert errors == []
