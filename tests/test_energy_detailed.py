"""Tests for the activity-based energy refinement."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hw.energy import EnergyModel, compare_energy, compare_energy_simulated
from repro.hw.resources import ResourceCost


class TestTransferEnergy:
    def test_linear_in_activity(self):
        m = EnergyModel(j_per_bus_byte=1e-9, j_per_noc_byte_hop=1e-10)
        assert m.transfer_energy_j(1000, 0) == pytest.approx(1e-6)
        assert m.transfer_energy_j(0, 1000) == pytest.approx(1e-7)
        assert m.transfer_energy_j(1000, 1000) == pytest.approx(1.1e-6)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyModel().transfer_energy_j(-1, 0)
        with pytest.raises(ConfigurationError):
            EnergyModel(j_per_bus_byte=-1.0)

    def test_detailed_is_base_plus_transfer(self):
        m = EnergyModel()
        r = ResourceCost(10_000, 10_000)
        base = m.energy_j(r, 0.01)
        total = m.energy_detailed_j(r, 0.01, 100_000, 50_000)
        assert total == pytest.approx(base + m.transfer_energy_j(100_000, 50_000))

    def test_transfer_term_is_small(self):
        """The refinement must not break the near-identical-power story:
        moving a typical run's bytes costs single-digit percent of the
        resource-time energy."""
        m = EnergyModel()
        r = ResourceCost(12_000, 12_000)
        run_s = 1e-3
        base = m.energy_j(r, run_s)
        transfer = m.transfer_energy_j(100_000, 50_000)
        assert transfer < 0.05 * base


class TestSimulatedComparison:
    def test_widens_gap_for_bus_heavy_baseline(self, all_results):
        r = all_results["jpeg"]
        m = EnergyModel()
        plain = compare_energy(
            "jpeg", m,
            r.synth_baseline.total, r.synth_proposed.total,
            r.sim_baseline.application_s, r.sim_proposed.application_s,
        )
        detailed = compare_energy_simulated(
            "jpeg", m,
            r.synth_baseline.total, r.synth_proposed.total,
            r.sim_baseline, r.sim_proposed,
        )
        # The baseline moves every kernel byte over the bus twice, so
        # adding activity energy can only help the proposed system.
        assert detailed.normalized_energy <= plain.normalized_energy + 1e-12

    def test_all_apps_still_save(self, all_results):
        m = EnergyModel()
        for name, r in all_results.items():
            rep = compare_energy_simulated(
                name, m,
                r.synth_baseline.total, r.synth_proposed.total,
                r.sim_baseline, r.sim_proposed,
            )
            assert rep.saving_percent > 0, name

    def test_simulators_populate_activity(self, all_results):
        for r in all_results.values():
            assert r.sim_baseline.extras["bus_bytes"] > 0
            if r.plan.noc is not None:
                assert r.sim_proposed.extras["noc_byte_hops"] > 0
            # Proposed moves strictly fewer bytes over the bus.
            assert (
                r.sim_proposed.extras["bus_bytes"]
                < r.sim_baseline.extras["bus_bytes"]
            )
