"""Tests for R/S classification and the adaptive mapping (Table I)."""

from __future__ import annotations

import itertools

import pytest

from repro.core import (
    CommGraph,
    KernelSpec,
    adaptive_map,
    classify_receive,
    classify_send,
)
from repro.core.mapping import ADAPTIVE_MAPPING, INFEASIBLE, needs_noc
from repro.core.topology import (
    KernelAttach,
    MemoryAttach,
    ReceiveClass,
    SendClass,
)


def graph_for(host_in=0, host_out=0, k_in=0, k_out=0):
    """A 3-kernel graph where kernel 'k' has the requested flows."""
    ks = {n: KernelSpec(n, 10.0, 10.0) for n in ("k", "p", "c")}
    kk = {}
    if k_in:
        kk[("p", "k")] = k_in
    if k_out:
        kk[("k", "c")] = k_out
    return CommGraph(
        kernels=ks,
        kk_edges=kk,
        host_in={"k": host_in} if host_in else {},
        host_out={"k": host_out} if host_out else {},
    )


class TestClassification:
    @pytest.mark.parametrize(
        "host_in,k_in,expected",
        [
            (0, 10, ReceiveClass.R1),
            (10, 0, ReceiveClass.R2),
            (10, 10, ReceiveClass.R3),
            (0, 0, ReceiveClass.R2),  # degenerate: host-invoked
        ],
    )
    def test_receive(self, host_in, k_in, expected):
        g = graph_for(host_in=host_in, k_in=k_in)
        assert classify_receive(g, "k") is expected

    @pytest.mark.parametrize(
        "host_out,k_out,expected",
        [
            (0, 10, SendClass.S1),
            (10, 0, SendClass.S2),
            (10, 10, SendClass.S3),
            (0, 0, SendClass.S2),  # degenerate: host collects
        ],
    )
    def test_send(self, host_out, k_out, expected):
        g = graph_for(host_out=host_out, k_out=k_out)
        assert classify_send(g, "k") is expected


class TestAdaptiveMapping:
    def test_table_is_total_over_nine_cases(self):
        cases = list(itertools.product(ReceiveClass, SendClass))
        assert len(cases) == 9
        for r, s in cases:
            assert (r, s) in ADAPTIVE_MAPPING

    def test_never_produces_infeasible_value(self):
        for r, s in itertools.product(ReceiveClass, SendClass):
            assert adaptive_map(r, s) != INFEASIBLE

    # The exact Table I rows, verbatim from the paper.
    @pytest.mark.parametrize(
        "r,s,k,m",
        [
            (ReceiveClass.R1, SendClass.S1, KernelAttach.K2, MemoryAttach.M2),
            (ReceiveClass.R1, SendClass.S2, KernelAttach.K1, MemoryAttach.M3),
            (ReceiveClass.R3, SendClass.S2, KernelAttach.K1, MemoryAttach.M3),
            (ReceiveClass.R1, SendClass.S3, KernelAttach.K2, MemoryAttach.M3),
            (ReceiveClass.R3, SendClass.S1, KernelAttach.K2, MemoryAttach.M3),
            (ReceiveClass.R3, SendClass.S3, KernelAttach.K2, MemoryAttach.M3),
            (ReceiveClass.R2, SendClass.S1, KernelAttach.K2, MemoryAttach.M1),
            (ReceiveClass.R2, SendClass.S3, KernelAttach.K2, MemoryAttach.M1),
            (ReceiveClass.R2, SendClass.S2, KernelAttach.K1, MemoryAttach.M1),
        ],
    )
    def test_table_rows(self, r, s, k, m):
        assert adaptive_map(r, s) == (k, m)

    def test_senders_always_get_noc_port(self):
        """S1/S3 (sends to kernels) must imply K2 — output needs a path."""
        for r in ReceiveClass:
            for s in (SendClass.S1, SendClass.S3):
                k, _ = adaptive_map(r, s)
                assert k is KernelAttach.K2

    def test_receivers_memory_reachable_from_noc(self):
        """R1/R3 (receives from kernels) must imply M2 or M3."""
        for r in (ReceiveClass.R1, ReceiveClass.R3):
            for s in SendClass:
                _, m = adaptive_map(r, s)
                assert m in (MemoryAttach.M2, MemoryAttach.M3)

    def test_host_touched_memory_reachable_from_bus(self):
        """Host input (R2/R3) or output (S2/S3) implies M1 or M3."""
        for r, s in itertools.product(ReceiveClass, SendClass):
            if r is ReceiveClass.R1 and s is SendClass.S1:
                continue  # pure kernel-to-kernel case: bus not needed
            _, m = adaptive_map(r, s)
            assert m in (MemoryAttach.M1, MemoryAttach.M3)

    def test_needs_noc(self):
        assert not needs_noc(ReceiveClass.R2, SendClass.S2)
        assert needs_noc(ReceiveClass.R1, SendClass.S2)
        assert needs_noc(ReceiveClass.R2, SendClass.S1)
