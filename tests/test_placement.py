"""Tests for the distance-minimizing mesh placement."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import place_on_mesh
from repro.core.placement import MeshPlacement, mesh_dimensions
from repro.errors import PlacementError


class TestMeshDimensions:
    @pytest.mark.parametrize(
        "n,dims",
        [(1, (1, 1)), (2, (2, 1)), (3, (3, 1)), (4, (2, 2)),
         (5, (3, 2)), (6, (3, 2)), (9, (3, 3)), (10, (4, 3))],
    )
    def test_near_square(self, n, dims):
        w, h = mesh_dimensions(n)
        assert (w, h) == dims
        assert w * h >= n

    def test_zero_rejected(self):
        with pytest.raises(PlacementError):
            mesh_dimensions(0)


class TestMeshPlacementValidation:
    def test_out_of_bounds_rejected(self):
        with pytest.raises(PlacementError):
            MeshPlacement(2, 2, {"a": (2, 0)})

    def test_collision_rejected(self):
        with pytest.raises(PlacementError):
            MeshPlacement(2, 2, {"a": (0, 0), "b": (0, 0)})

    def test_distance(self):
        p = MeshPlacement(3, 3, {"a": (0, 0), "b": (2, 1)})
        assert p.distance("a", "b") == 3
        with pytest.raises(PlacementError):
            p.distance("a", "zz")

    def test_weighted_cost(self):
        p = MeshPlacement(3, 1, {"a": (0, 0), "b": (1, 0), "c": (2, 0)})
        cost = p.weighted_cost({("a", "b"): 10.0, ("a", "c"): 1.0})
        assert cost == 10.0 * 1 + 1.0 * 2


class TestPlaceOnMesh:
    def test_pair_placed_adjacent(self):
        p = place_on_mesh(["k", "m"], {("k", "m"): 100.0})
        assert p.distance("k", "m") == 1

    def test_heavy_edges_shorter_than_light(self):
        nodes = ["a", "b", "c", "d", "e", "f"]
        edges = {("a", "b"): 1000.0, ("e", "f"): 1.0, ("a", "f"): 1.0}
        p = place_on_mesh(nodes, edges)
        assert p.distance("a", "b") == 1

    def test_star_center_placed_centrally(self):
        # The hub of a star should end adjacent to most leaves.
        nodes = ["hub", "l1", "l2", "l3", "l4"]
        edges = {("hub", l): 10.0 for l in nodes[1:]}
        p = place_on_mesh(nodes, edges)
        adjacent = sum(1 for l in nodes[1:] if p.distance("hub", l) == 1)
        assert adjacent >= 3

    def test_explicit_dimensions_respected(self):
        p = place_on_mesh(["a", "b", "c"], {}, width=3, height=2)
        assert (p.width, p.height) == (3, 2)

    def test_too_small_mesh_rejected(self):
        with pytest.raises(PlacementError):
            place_on_mesh(["a", "b", "c"], {}, width=1, height=2)

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(PlacementError):
            place_on_mesh(["a", "a"], {})

    def test_unknown_edge_node_rejected(self):
        with pytest.raises(PlacementError):
            place_on_mesh(["a"], {("a", "zz"): 1.0})

    def test_empty_rejected(self):
        with pytest.raises(PlacementError):
            place_on_mesh([], {})

    def test_deterministic(self):
        nodes = ["a", "b", "c", "d", "e"]
        edges = {("a", "c"): 3.0, ("b", "d"): 2.0, ("c", "e"): 1.0}
        p1 = place_on_mesh(nodes, edges)
        p2 = place_on_mesh(nodes, edges)
        assert p1.positions == p2.positions


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 9),
    seed_edges=st.lists(
        st.tuples(st.integers(0, 8), st.integers(0, 8), st.floats(0.1, 100)),
        max_size=12,
    ),
)
def test_placement_always_valid_and_complete(n, seed_edges):
    nodes = [f"n{i}" for i in range(n)]
    edges = {}
    for a, b, w in seed_edges:
        if a < n and b < n and a != b:
            edges[(f"n{a}", f"n{b}")] = w
    p = place_on_mesh(nodes, edges)
    # Every node placed exactly once inside the mesh, no collisions
    # (MeshPlacement validates internally; we re-check coverage).
    assert set(p.positions) == set(nodes)
    assert p.router_count == n
    assert p.width * p.height >= n


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_refinement_never_worse_than_random(data):
    """The optimizer's cost must beat (or tie) a naive row-major packing."""
    n = data.draw(st.integers(2, 8))
    nodes = [f"n{i}" for i in range(n)]
    pairs = [(a, b) for a in range(n) for b in range(n) if a < b]
    chosen = data.draw(st.lists(st.sampled_from(pairs), max_size=10))
    edges = {}
    for a, b in chosen:
        edges[(f"n{a}", f"n{b}")] = edges.get((f"n{a}", f"n{b}"), 0) + 1.0
    placed = place_on_mesh(nodes, edges)
    w, h = placed.width, placed.height
    naive = MeshPlacement(
        w, h, {nodes[i]: (i % w, i // w) for i in range(n)}
    )
    assert placed.weighted_cost(edges) <= naive.weighted_cost(edges) + 1e-9
