"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import AllOf, Engine, Resource, WrrResource


class TestEventsAndProcesses:
    def test_timeout_advances_time(self):
        eng = Engine()
        log = []

        def proc():
            yield 1.5
            log.append(eng.now)
            yield 0.5
            log.append(eng.now)

        eng.process(proc())
        eng.run()
        assert log == [1.5, 2.0]

    def test_process_return_value(self):
        eng = Engine()

        def proc():
            yield 1.0
            return "done"

        p = eng.process(proc())
        eng.run()
        assert p.triggered
        assert p.value == "done"

    def test_wait_on_event(self):
        eng = Engine()
        ev = eng.event()
        log = []

        def waiter():
            value = yield ev
            log.append((eng.now, value))

        def trigger():
            yield 3.0
            ev.succeed("payload")

        eng.process(waiter())
        eng.process(trigger())
        eng.run()
        assert log == [(3.0, "payload")]

    def test_wait_on_already_triggered_event(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed(42)
        log = []

        def waiter():
            v = yield ev
            log.append(v)

        eng.process(waiter())
        eng.run()
        assert log == [42]

    def test_allof_joins(self):
        eng = Engine()
        done_at = []

        def worker(d):
            yield d

        def joiner():
            ps = [eng.process(worker(d)) for d in (1.0, 3.0, 2.0)]
            yield ps  # list -> AllOf
            done_at.append(eng.now)

        eng.process(joiner())
        eng.run()
        assert done_at == [3.0]

    def test_allof_empty_triggers_immediately(self):
        eng = Engine()
        ev = AllOf(eng, [])
        assert ev.triggered

    def test_double_trigger_rejected(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_negative_delay_rejected(self):
        eng = Engine()

        def proc():
            yield -1.0

        eng.process(proc())
        with pytest.raises(SimulationError):
            eng.run()

    def test_bad_yield_type_rejected(self):
        eng = Engine()

        def proc():
            yield "nope"

        eng.process(proc())
        with pytest.raises(SimulationError):
            eng.run()

    def test_deadlock_detected(self):
        eng = Engine()
        ev = eng.event()  # nobody triggers it

        def proc():
            yield ev

        eng.process(proc())
        with pytest.raises(DeadlockError):
            eng.run()

    def test_run_until(self):
        eng = Engine()

        def proc():
            yield 10.0

        eng.process(proc())
        assert eng.run(until=3.0, check_deadlock=False) == 3.0

    def test_determinism_of_ties(self):
        """Events scheduled at the same instant fire in schedule order."""
        eng = Engine()
        order = []

        def p(tag):
            yield 1.0
            order.append(tag)

        for tag in "abc":
            eng.process(p(tag))
        eng.run()
        assert order == ["a", "b", "c"]


class TestResource:
    def test_fifo_granting(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        order = []

        def user(tag, hold):
            yield res.request()
            order.append((tag, eng.now))
            yield hold
            res.release()

        def spawn():
            eng.process(user("a", 2.0))
            yield 0.1
            eng.process(user("b", 1.0))
            yield 0.1
            eng.process(user("c", 1.0))

        eng.process(spawn())
        eng.run()
        assert [t for t, _ in order] == ["a", "b", "c"]
        assert order[1][1] == pytest.approx(2.0)
        assert order[2][1] == pytest.approx(3.0)

    def test_capacity_two_parallel(self):
        eng = Engine()
        res = Resource(eng, capacity=2)
        done = []

        def user(tag):
            yield res.request()
            yield 1.0
            res.release()
            done.append((tag, eng.now))

        for t in "ab":
            eng.process(user(t))
        eng.run()
        assert all(at == pytest.approx(1.0) for _, at in done)

    def test_release_idle_rejected(self):
        eng = Engine()
        res = Resource(eng)
        with pytest.raises(SimulationError):
            res.release()

    def test_busy_time_accounting(self):
        eng = Engine()
        res = Resource(eng)

        def user():
            yield res.request()
            yield 2.0
            res.release()
            yield 3.0
            yield res.request()
            yield 1.0
            res.release()

        eng.process(user())
        eng.run()
        assert res.busy_time == pytest.approx(3.0)
        assert res.utilization(6.0) == pytest.approx(0.5)

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Engine(), capacity=0)


class TestWrrResource:
    def _contend(self, weights, arrivals, holds=1.0):
        """Queue many requests from several keys, return grant order."""
        eng = Engine()
        res = WrrResource(eng, weights=weights)
        order = []

        def user(key, idx):
            yield res.request(key=key)
            order.append((key, idx))
            yield holds
            res.release()

        def spawn():
            # Occupy the resource so all contenders genuinely queue.
            yield res.request(key="warm")
            for key, count in arrivals:
                for i in range(count):
                    eng.process(user(key, i))
            yield 0.5
            res.release()

        eng.process(spawn())
        eng.run()
        return order

    def test_round_robin_with_equal_weights(self):
        order = self._contend(None, [("A", 3), ("B", 3)])
        keys = [k for k, _ in order]
        assert keys == ["A", "B", "A", "B", "A", "B"]

    def test_weighted_service(self):
        order = self._contend({"A": 2, "B": 1}, [("A", 4), ("B", 2)])
        keys = [k for k, _ in order]
        assert keys == ["A", "A", "B", "A", "A", "B"]

    def test_fifo_within_key(self):
        order = self._contend(None, [("A", 3)])
        assert [i for _, i in order] == [0, 1, 2]

    def test_idle_keys_skipped(self):
        order = self._contend({"A": 1, "B": 1}, [("A", 2)])
        assert [k for k, _ in order] == ["A", "A"]

    def test_invalid_weight(self):
        with pytest.raises(SimulationError):
            WrrResource(Engine(), default_weight=0)
