"""Tests for the sweep utility and the static NoC load analysis."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.noc.analysis import analyze_noc_load
from repro.sim.systems import SystemParams, simulate_proposed
from repro.sweep import SweepGrid, run_sweep, to_csv


class TestSweepGrid:
    def test_size_and_points(self):
        grid = SweepGrid(
            apps=["klt", "jpeg"],
            scales=[1, 2],
            param_grid={"bus_width_bytes": [4, 8]},
        )
        assert grid.size() == 8
        assert len(list(grid.points())) == 8

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepGrid(apps=["klt"], param_grid={"warp_factor": [9]})

    def test_empty_apps_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepGrid(apps=[])


class TestRunSweep:
    @pytest.fixture(scope="class")
    def points(self):
        grid = SweepGrid(
            apps=["klt"],
            param_grid={"bus_width_bytes": [4, 8, 16]},
            simulate=False,
        )
        return run_sweep(grid)

    def test_all_points_evaluated(self, points):
        assert len(points) == 3
        widths = [p.params.bus_width_bytes for p in points]
        assert widths == [4, 8, 16]

    def test_wider_bus_shrinks_baseline(self, points):
        base = [p.result.analytic_baseline.kernels_s for p in points]
        assert base[0] > base[1] > base[2]

    def test_speedup_invariant_under_refit(self, points):
        """Re-fitting per sweep point makes the speed-up θ-invariant:
        calibration pins the comm/comp *ratio*, so scaling the bus
        rescales every term. (Sensitivity to θ without re-fitting is
        what bench_ablation_theta measures.)"""
        speedups = [p.result.proposed_vs_baseline.kernels for p in points]
        assert max(speedups) - min(speedups) < 0.02 * max(speedups)

    def test_records_are_flat(self, points):
        rec = points[0].record()
        assert rec["app"] == "klt"
        assert rec["solution"] == "SM"
        assert isinstance(rec["speedup_kernels"], float)
        assert "sim_speedup_kernels" not in rec  # simulate=False

    def test_simulated_record_fields(self):
        grid = SweepGrid(apps=["klt"], simulate=True)
        points = run_sweep(grid)
        rec = points[0].record()
        assert rec["sim_speedup_kernels"] > 1.0


class TestCsvExport:
    def test_roundtrip_via_file(self, tmp_path):
        grid = SweepGrid(apps=["klt"], simulate=False)
        points = run_sweep(grid)
        path = tmp_path / "sweep.csv"
        text = to_csv(points, path)
        assert path.read_text() == text
        lines = text.strip().splitlines()
        assert len(lines) == 2  # header + one row
        assert lines[0].startswith("app,scale,")
        assert "klt" in lines[1]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            to_csv([])


class TestNocLoadAnalysis:
    def test_no_noc_returns_none(self, all_results):
        assert analyze_noc_load(all_results["klt"].plan) is None

    def test_static_matches_simulated_link_traffic(self, all_results):
        """Deterministic routing: predicted per-link bytes must equal
        what the simulator measures, exactly."""
        r = all_results["jpeg"]
        report = analyze_noc_load(r.plan)
        components: dict = {}
        simulate_proposed(
            r.plan, r.fitted.host_other_s, SystemParams(),
            components_out=components,
        )
        noc = components["noc"]
        measured = {
            (l.src, l.dst): l.bytes_moved
            for l in noc.links.values()
            if l.bytes_moved
        }
        assert measured == report.link_loads

    def test_totals_consistent(self, all_results):
        for name, r in all_results.items():
            report = analyze_noc_load(r.plan)
            if report is None:
                continue
            planned = sum(b for _, _, b in r.plan.noc.edges)
            assert report.total_flow_bytes == planned
            assert report.byte_hops >= planned  # >= 1 hop per flow... unless co-located
            assert sum(report.link_loads.values()) == report.byte_hops

    def test_average_hops_short_after_placement(self, all_results):
        """Distance-minimizing placement keeps flows at ~1 hop."""
        report = analyze_noc_load(all_results["jpeg"].plan)
        assert report.average_hops <= 2.0

    def test_serialization_bound_below_simulated(self, all_results):
        r = all_results["fluid"]
        report = analyze_noc_load(r.plan)
        params = SystemParams()
        bound = report.serialization_bound_s(
            params.noc_link_width_bytes, 150e6
        )
        # The bound must hold against measured NoC drain activity: the
        # whole proposed run cannot beat the bottleneck link.
        assert r.sim_proposed.kernels_s >= bound

    def test_invalid_bound_params(self, all_results):
        report = analyze_noc_load(all_results["jpeg"].plan)
        with pytest.raises(ConfigurationError):
            report.serialization_bound_s(0, 150e6)

    def test_load_balance_in_unit_range(self, all_results):
        for r in all_results.values():
            report = analyze_noc_load(r.plan)
            if report is not None:
                assert 0.0 < report.load_balance <= 1.0
