"""Unit tests for the static analyzer's interval propagation."""

import pytest

from repro.errors import ConfigurationError
from repro.static.analyzer import (
    APPROX_DATA_DEPENDENT,
    HOST,
    StaticGraph,
    analyze,
)
from repro.static.ir import (
    BufferDecl,
    Extent,
    TaskGraph,
    load,
    repeat,
    step,
    store,
)


def _graph(nodes, buffers=None, kernels=("k1", "k2"), app="demo"):
    if buffers is None:
        buffers = (
            BufferDecl.dense("a", (16,), 4),
            BufferDecl.dense("b", (16,), 4),
            BufferDecl.dense("c", (16,), 4),
        )
    return TaskGraph(app=app, buffers=buffers, kernels=kernels, nodes=nodes)


# -- crediting rules ------------------------------------------------------
def test_producer_consumer_chain_is_exact():
    g = analyze(_graph((
        step("capture", store("a")),
        step("k1", load("a"), store("b"), work=10),
        step("k2", load("b"), store("c"), work=20),
        step("display", load("c")),
    )))
    assert g.exact
    assert g.kk_edges == {("k1", "k2"): Extent.exactly(64)}
    assert g.host_in == {"k1": Extent.exactly(64)}
    assert g.host_out == {"k2": Extent.exactly(64)}
    assert g.work == {"k1": 10.0, "k2": 20.0}


def test_never_written_bytes_credit_entry_folded_to_host():
    g = analyze(_graph((
        step("k1", load("a"), store("b"), work=1),
        step("k2", load("b"), store("c"), work=1),
    )))
    # 'a' was never written: the load credits __entry__ -> folds to host.
    assert g.host_in == {"k1": Extent.exactly(64)}


def test_partial_gap_splits_credit_between_writer_and_entry():
    g = analyze(_graph((
        step("capture", store("a", 32)),       # bytes [0, 32) written
        step("k1", load("a"), store("b"), work=1),
        step("k2", load("b"), work=1),
    )))
    # k1 reads 32 written bytes (host) + 32 never-written bytes (entry,
    # also folded to host) => one 64-byte host_in edge, two credits.
    assert g.host_in == {"k1": Extent.exactly(64)}
    assert g.transfers[(HOST, "k1")] == 2


def test_last_writer_wins_per_byte_range():
    g = analyze(_graph((
        step("capture", store("a")),
        step("k1", store("a", 32, 16), work=1),  # overwrite [16, 48)
        step("k2", load("a"), work=1),
    )))
    # k2's 64-byte read: [0,16) + [48,64) from capture (host), [16,48)
    # from k1.
    assert g.kk_edges == {("k1", "k2"): Extent.exactly(32)}
    assert g.host_in == {"k2": Extent.exactly(32)}


def test_self_reads_are_dropped():
    g = analyze(_graph((
        step("capture", store("a")),
        step("k1", load("a"), store("b"), load("b"), store("c"), work=1),
        step("k2", load("c"), work=1),
    )))
    # k1 re-reading its own store of b is local traffic, not an edge.
    assert ("k1", "k1") not in g.kk_edges
    assert g.kk_edges == {("k1", "k2"): Extent.exactly(64)}


def test_host_host_traffic_is_folded_away():
    g = analyze(_graph((
        step("capture", store("a")),
        step("host_mid", load("a"), store("b")),
        step("k1", load("b"), store("c"), work=1),
        step("k2", load("c"), work=1),
    )))
    # capture -> host_mid folds to host -> host and disappears.
    assert set(g.kk_edges) == {("k1", "k2")}
    assert g.host_in == {"k1": Extent.exactly(64)}


def test_repeat_unrolls_with_cross_iteration_credits():
    g = analyze(_graph((
        step("capture", store("a")),
        repeat(3,
               step("k1", load("a"), store("b"), work=1),
               step("k2", load("b"), store("a"), work=1)),
    )))
    # Iteration 1: k1 reads host's a. Iterations 2-3: k1 reads k2's a.
    assert g.kk_edges[("k1", "k2")] == Extent.exactly(3 * 64)
    assert g.kk_edges[("k2", "k1")] == Extent.exactly(2 * 64)
    assert g.host_in == {"k1": Extent.exactly(64)}
    assert g.work == {"k1": 3.0, "k2": 3.0}


def test_edges_are_ordered_heaviest_first():
    g = analyze(_graph((
        step("capture", store("a"), store("b"), store("c")),
        step("k1", load("a", 16), store("b"), work=1),
        step("k2", load("b"), load("a", 32), store("c"), work=1),
        step("display", load("c")),
    )))
    nominals = [e.nominal for e in g.kk_edges.values()]
    assert nominals == sorted(nominals, reverse=True)


# -- approximations -------------------------------------------------------
def test_dynamic_buffer_produces_bounded_edge_and_record():
    g = analyze(_graph(
        (
            step("capture", store("s")),
            step("k1", load("s"), store("b"), work=1),
            step("k2", load("b"), work=1),
        ),
        buffers=(
            BufferDecl.dynamic("s", 12, 396, 72),
            BufferDecl.dense("b", (16,), 4),
        ),
    ))
    assert not g.exact
    assert g.host_in == {"k1": Extent.bounded(12, 396, 72)}
    assert len(g.approximations) == 1
    a = g.approximations[0]
    assert a.kind == APPROX_DATA_DEPENDENT
    assert (a.producer, a.consumer, a.buffer) == (HOST, "k1", "s")
    assert a.extent == Extent.bounded(12, 396, 72)


def test_unwritten_dynamic_buffer_credits_entry():
    g = analyze(_graph(
        (
            step("k1", load("s"), store("b"), work=1),
            step("k2", load("b"), work=1),
        ),
        buffers=(
            BufferDecl.dynamic("s", 1, 64, 8),
            BufferDecl.dense("b", (16,), 4),
        ),
    ))
    assert g.host_in == {"k1": Extent.bounded(1, 64, 8)}


# -- validation -----------------------------------------------------------
def test_kernel_with_no_work_is_rejected():
    with pytest.raises(ConfigurationError):
        analyze(_graph((
            step("capture", store("a")),
            step("k1", load("a"), store("b"), work=1),
            step("k2", load("b")),          # no work declared
        )))


# -- serialization --------------------------------------------------------
def test_static_graph_round_trips_through_its_document():
    g = analyze(_graph(
        (
            step("capture", store("a"), store("s")),
            step("k1", load("a"), load("s"), store("b"), work=10),
            step("k2", load("b"), store("c"), work=20),
            step("display", load("c")),
        ),
        buffers=(
            BufferDecl.dense("a", (16,), 4),
            BufferDecl.dense("b", (16,), 4),
            BufferDecl.dense("c", (16,), 4),
            BufferDecl.dynamic("s", 1, 64, 8),
        ),
    ))
    doc = g.to_dict()
    assert doc["kind"] == "static-graph"
    back = StaticGraph.from_dict(doc)
    assert back == g


def test_static_graph_document_rejects_wrong_kind():
    g = analyze(_graph((
        step("capture", store("a")),
        step("k1", load("a"), store("b"), work=1),
        step("k2", load("b"), work=1),
    )))
    doc = g.to_dict()
    doc["kind"] = "not-a-static-graph"
    with pytest.raises(Exception):
        StaticGraph.from_dict(doc)
