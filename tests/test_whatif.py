"""Tests for the what-if analysis API."""

from __future__ import annotations

import pytest

from repro.core import CommGraph, DesignConfig, KernelSpec
from repro.core.whatif import WhatIf
from repro.errors import DesignError

THETA = 1.3e-9


def mk_whatif():
    ks = {
        "a": KernelSpec("a", 100_000.0, 1_600_000.0),
        "b": KernelSpec("b", 50_000.0, 800_000.0),
        "c": KernelSpec("c", 25_000.0, 400_000.0),
    }
    graph = CommGraph(
        kernels=ks,
        kk_edges={("a", "b"): 40_000, ("b", "c"): 20_000, ("a", "c"): 5_000},
        host_in={"a": 30_000},
        host_out={"c": 20_000},
    )
    config = DesignConfig(theta_s_per_byte=THETA, stream_overhead_s=0.0)
    return WhatIf("t", graph, config)


class TestKernelSpeed:
    def test_faster_kernel_reduces_time(self):
        w = mk_whatif()
        out = w.kernel_speed("a", 2.0)
        assert out.relative_time < 1.0
        assert out.kernels_seconds < w.reference_seconds

    def test_slower_kernel_increases_time(self):
        w = mk_whatif()
        out = w.kernel_speed("a", 0.5)
        assert out.relative_time > 1.0

    def test_invalid_factor(self):
        with pytest.raises(DesignError):
            mk_whatif().kernel_speed("a", 0.0)

    def test_unknown_kernel(self):
        with pytest.raises(DesignError):
            mk_whatif().kernel_speed("zz", 2.0)

    def test_reference_untouched(self):
        w = mk_whatif()
        before = w.reference_seconds
        w.kernel_speed("a", 4.0)
        assert w.reference_seconds == before


class TestEdgeVolume:
    def test_bigger_edge_costs_nothing_when_hidden(self):
        """Kernel-to-kernel traffic is hidden by the custom
        interconnect, so growing a covered edge barely moves the
        analytic proposed time (it still inflates the baseline)."""
        w = mk_whatif()
        out = w.edge_volume("a", "b", 4.0)
        assert out.relative_time == pytest.approx(1.0, abs=0.05)
        assert out.baseline_seconds > w._reference[2]

    def test_missing_edge_rejected(self):
        with pytest.raises(DesignError):
            mk_whatif().edge_volume("c", "a", 2.0)


class TestBusSpeed:
    def test_faster_bus_shrinks_proposed_time(self):
        w = mk_whatif()
        out = w.bus_speed(4.0)
        assert out.relative_time < 1.0

    def test_faster_bus_shrinks_advantage(self):
        w = mk_whatif()
        out = w.bus_speed(10.0)
        ref_speedup = (
            w._reference[2] / w.reference_seconds
        )
        assert out.speedup_vs_baseline < ref_speedup


class TestDropKernel:
    def test_drop_folds_traffic_to_host(self):
        w = mk_whatif()
        out = w.drop_kernel("b")
        assert "b" not in out.plan.graph.kernel_names()
        # a->b and b->c became host traffic; a->c remains kernel-kernel.
        assert out.plan.graph.edge_bytes("a", "c") == 5_000

    def test_drop_can_change_solution(self):
        w = mk_whatif()
        out = w.drop_kernel("b")
        # With only the exclusive a->c pair left, the NoC disappears.
        assert out.new_solution != out.reference_solution
        assert out.solution_changed

    def test_cannot_drop_unknown_or_last(self):
        w = mk_whatif()
        with pytest.raises(DesignError):
            w.drop_kernel("zz")
        ks = {"solo": KernelSpec("solo", 10.0, 10.0)}
        solo = WhatIf(
            "s",
            CommGraph(kernels=ks, host_in={"solo": 10}),
            DesignConfig(theta_s_per_byte=THETA),
        )
        with pytest.raises(DesignError):
            solo.drop_kernel("solo")


class TestSensitivity:
    def test_ranks_biggest_kernel_first(self):
        w = mk_whatif()
        sens = w.sensitivity(2.0)
        # Speeding up the largest kernel helps most (lowest ratio).
        assert min(sens, key=sens.get) == "a"
        assert all(v <= 1.0 + 1e-9 for v in sens.values())

    def test_paper_app_sensitivity(self, all_results):
        r = all_results["jpeg"]
        w = WhatIf(
            "jpeg",
            r.fitted.graph,
            DesignConfig(
                theta_s_per_byte=r.fitted.theta_s_per_byte,
                stream_overhead_s=r.fitted.stream_overhead_s,
            ),
            host_other_s=r.fitted.host_other_s,
        )
        sens = w.sensitivity(2.0)
        # The duplicated hot kernel dominates jpeg's sensitivity.
        hottest = min(sens, key=sens.get)
        assert hottest.startswith("huff_ac_dec")
