"""Tests for the analytical performance model (Eq. 2 and Δ terms)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AnalyticModel,
    CommGraph,
    DesignConfig,
    KernelSpec,
    design_interconnect,
)
from repro.errors import ConfigurationError
from repro.units import HOST_CLOCK, KERNEL_CLOCK

THETA = 2e-9


def two_kernel_graph(kk=10_000, h_in=5_000, h_out=5_000):
    ks = {
        "p": KernelSpec("p", 100_000.0, 1_600_000.0),
        "c": KernelSpec("c", 50_000.0, 800_000.0),
    }
    return CommGraph(
        kernels=ks,
        kk_edges={("p", "c"): kk} if kk else {},
        host_in={"p": h_in},
        host_out={"c": h_out},
    )


class TestEquationTwo:
    def test_baseline_matches_formula(self):
        g = two_kernel_graph()
        m = AnalyticModel(g, THETA, host_other_s=0.0)
        base = m.baseline()
        tau = KERNEL_CLOCK.cycles_to_seconds(150_000.0)
        # traffic = h_in + h_out + 2*kk = 5000 + 5000 + 20000
        comm = 30_000 * THETA
        assert base.computation_s == pytest.approx(tau)
        assert base.communication_s == pytest.approx(comm)
        assert base.kernels_s == pytest.approx(tau + comm)

    def test_software_times(self):
        g = two_kernel_graph()
        m = AnalyticModel(g, THETA, host_other_s=0.5)
        sw = m.software()
        assert sw.kernels_s == pytest.approx(
            HOST_CLOCK.cycles_to_seconds(2_400_000.0)
        )
        assert sw.application_s == pytest.approx(sw.kernels_s + 0.5)

    def test_comm_comp_ratio(self):
        g = two_kernel_graph()
        m = AnalyticModel(g, THETA, 0.0)
        base = m.baseline()
        assert base.comm_comp_ratio == pytest.approx(
            base.communication_s / base.computation_s
        )

    def test_invalid_params_rejected(self):
        g = two_kernel_graph()
        with pytest.raises(ConfigurationError):
            AnalyticModel(g, 0.0, 0.0)
        with pytest.raises(ConfigurationError):
            AnalyticModel(g, THETA, -1.0)


class TestDeltas:
    def mk_plan(self, g, **cfg):
        config = DesignConfig(theta_s_per_byte=THETA, stream_overhead_s=0.0, **cfg)
        return design_interconnect("t", g, config)

    def test_delta_c_for_shared_pair(self):
        g = two_kernel_graph(kk=10_000)
        plan = self.mk_plan(g)
        m = AnalyticModel(g, THETA, 0.0)
        # p->c is an exclusive pair => shared memory, delta_c = 2 D theta.
        assert len(plan.sharing) == 1
        assert m.delta_c(plan) == pytest.approx(2 * 10_000 * THETA)
        assert m.delta_n(plan) == 0.0

    def test_delta_n_for_noc_edges(self):
        g = two_kernel_graph(kk=10_000)
        plan = self.mk_plan(g, enable_sharing=False)
        m = AnalyticModel(g, THETA, 0.0)
        assert m.delta_c(plan) == 0.0
        assert m.delta_n(plan) == pytest.approx(2 * 10_000 * THETA)

    def test_savings_identical_sm_vs_noc(self):
        """Both interconnect styles hide the same traffic analytically."""
        g = two_kernel_graph(kk=10_000)
        m = AnalyticModel(g, THETA, 0.0)
        p_sm = self.mk_plan(g)
        p_noc = self.mk_plan(g, enable_sharing=False)
        assert m.proposed(p_sm).kernels_s == pytest.approx(
            m.proposed(p_noc).kernels_s
        )

    def test_proposed_never_exceeds_baseline(self):
        g = two_kernel_graph()
        plan = self.mk_plan(g)
        m = AnalyticModel(g, THETA, 0.0)
        assert m.proposed(plan).kernels_s <= m.baseline().kernels_s

    def test_communication_floor_zero(self):
        # Absurd traffic hiding cannot produce negative communication.
        g = two_kernel_graph(kk=10**9, h_in=0, h_out=0)
        plan = self.mk_plan(g)
        m = AnalyticModel(g, THETA, 0.0)
        assert m.proposed(plan).communication_s >= 0.0

    def test_computation_floor_half(self):
        g = two_kernel_graph()
        plan = self.mk_plan(g)
        m = AnalyticModel(g, THETA, 0.0)
        base = m.baseline()
        assert m.proposed(plan).computation_s >= base.computation_s / 2 - 1e-15


class TestSpeedups:
    def test_speedup_directions(self):
        g = two_kernel_graph()
        m = AnalyticModel(g, THETA, host_other_s=0.001)
        plan = design_interconnect(
            "t", g, DesignConfig(theta_s_per_byte=THETA, stream_overhead_s=0.0)
        )
        vs_base = m.proposed_vs_baseline(plan)
        assert vs_base.application >= 1.0
        assert vs_base.kernels >= 1.0
        # Application speed-up is diluted by host-resident time.
        assert vs_base.application <= vs_base.kernels + 1e-12

    def test_compare_is_ratio(self):
        g = two_kernel_graph()
        m = AnalyticModel(g, THETA, 0.0)
        pair = AnalyticModel.compare(m.software(), m.baseline())
        assert pair.kernels == pytest.approx(
            m.software().kernels_s / m.baseline().kernels_s
        )


@settings(max_examples=60, deadline=None)
@given(
    kk=st.integers(0, 10**6),
    h_in=st.integers(0, 10**6),
    h_out=st.integers(0, 10**6),
    other_ms=st.floats(0, 10),
)
def test_proposed_bounded_by_baseline_and_positive(kk, h_in, h_out, other_ms):
    g = two_kernel_graph(kk=kk, h_in=h_in, h_out=h_out)
    m = AnalyticModel(g, THETA, host_other_s=other_ms / 1000.0)
    plan = design_interconnect(
        "t", g, DesignConfig(theta_s_per_byte=THETA, stream_overhead_s=0.0)
    )
    prop, base = m.proposed(plan), m.baseline()
    assert 0 < prop.kernels_s <= base.kernels_s + 1e-15
    assert prop.application_s <= base.application_s + 1e-15
