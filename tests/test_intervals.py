"""Unit + property tests for the interval containers.

The property tests drive the interval structures against a naive
per-address dictionary/set reference model — the structures must be
*byte-identical* to per-address tracking, which is the exactness claim
the profiler's correctness rests on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProfilingError
from repro.profiling.intervals import IntervalMap, IntervalSet

# ---------------------------------------------------------------------------
# IntervalMap unit tests
# ---------------------------------------------------------------------------


class TestIntervalMapBasics:
    def test_empty_map_queries_empty(self):
        m = IntervalMap()
        assert m.query(0, 100) == []
        assert len(m) == 0
        assert m.total_length() == 0

    def test_single_assign_and_query(self):
        m = IntervalMap()
        m.assign(10, 20, "a")
        assert m.query(0, 100) == [(10, 20, "a")]
        assert m.total_length() == 10

    def test_query_clips_to_range(self):
        m = IntervalMap()
        m.assign(10, 20, "a")
        assert m.query(15, 17) == [(15, 17, "a")]
        assert m.query(5, 12) == [(10, 12, "a")]
        assert m.query(18, 25) == [(18, 20, "a")]

    def test_overwrite_middle_splits(self):
        m = IntervalMap()
        m.assign(0, 10, "a")
        m.assign(3, 5, "b")
        assert m.query(0, 10) == [(0, 3, "a"), (3, 5, "b"), (5, 10, "a")]

    def test_overwrite_whole(self):
        m = IntervalMap()
        m.assign(0, 10, "a")
        m.assign(0, 10, "b")
        assert m.query(0, 10) == [(0, 10, "b")]
        assert len(m) == 1

    def test_adjacent_same_value_coalesces(self):
        m = IntervalMap()
        m.assign(0, 5, "a")
        m.assign(5, 10, "a")
        assert len(m) == 1
        assert m.query(0, 10) == [(0, 10, "a")]

    def test_adjacent_different_value_stays_split(self):
        m = IntervalMap()
        m.assign(0, 5, "a")
        m.assign(5, 10, "b")
        assert len(m) == 2

    def test_empty_assign_is_noop(self):
        m = IntervalMap()
        m.assign(5, 5, "a")
        assert len(m) == 0

    def test_value_at(self):
        m = IntervalMap()
        m.assign(0, 4, "a")
        assert m.value_at(0) == "a"
        assert m.value_at(3) == "a"
        assert m.value_at(4) is None

    def test_negative_interval_rejected(self):
        m = IntervalMap()
        with pytest.raises(ProfilingError):
            m.assign(5, 3, "a")
        with pytest.raises(ProfilingError):
            m.assign(-1, 3, "a")
        with pytest.raises(ProfilingError):
            m.query(5, 3)

    def test_overwrite_spanning_multiple(self):
        m = IntervalMap()
        m.assign(0, 3, "a")
        m.assign(5, 8, "b")
        m.assign(10, 12, "c")
        m.assign(2, 11, "x")
        assert m.query(0, 12) == [(0, 2, "a"), (2, 11, "x"), (11, 12, "c")]

    def test_gap_between_assignments_stays_gap(self):
        m = IntervalMap()
        m.assign(0, 2, "a")
        m.assign(8, 10, "b")
        assert m.query(0, 10) == [(0, 2, "a"), (8, 10, "b")]

    def test_iteration_order_sorted(self):
        m = IntervalMap()
        m.assign(20, 30, "b")
        m.assign(0, 10, "a")
        assert [s for s, _, _ in m] == [0, 20]


# ---------------------------------------------------------------------------
# IntervalSet unit tests
# ---------------------------------------------------------------------------


class TestIntervalSetBasics:
    def test_empty(self):
        s = IntervalSet()
        assert s.measure() == 0
        assert not s.contains(0)

    def test_single_add(self):
        s = IntervalSet()
        s.add(3, 7)
        assert s.measure() == 4
        assert s.contains(3) and s.contains(6)
        assert not s.contains(7)

    def test_touching_intervals_merge(self):
        s = IntervalSet()
        s.add(0, 5)
        s.add(5, 10)
        assert len(s) == 1
        assert s.measure() == 10

    def test_overlapping_adds_union(self):
        s = IntervalSet()
        s.add(0, 6)
        s.add(4, 10)
        assert s.measure() == 10

    def test_disjoint_adds(self):
        s = IntervalSet()
        s.add(0, 2)
        s.add(10, 12)
        assert len(s) == 2
        assert s.measure() == 4

    def test_add_spanning_existing(self):
        s = IntervalSet()
        s.add(2, 4)
        s.add(8, 9)
        s.add(0, 20)
        assert len(s) == 1
        assert s.measure() == 20

    def test_empty_add_noop(self):
        s = IntervalSet()
        s.add(4, 4)
        assert s.measure() == 0

    def test_intersect_length(self):
        s = IntervalSet()
        s.add(0, 10)
        s.add(20, 30)
        assert s.intersect_length(5, 25) == 10
        assert s.intersect_length(10, 20) == 0
        assert s.intersect_length(0, 40) == 20

    def test_invalid_range_rejected(self):
        s = IntervalSet()
        with pytest.raises(ProfilingError):
            s.add(3, 1)


# ---------------------------------------------------------------------------
# Property tests against naive reference models
# ---------------------------------------------------------------------------

_ops_map = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=40),
        st.sampled_from(["a", "b", "c", "d"]),
    ),
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(ops=_ops_map, qlo=st.integers(0, 200), qlen=st.integers(0, 60))
def test_interval_map_matches_per_byte_reference(ops, qlo, qlen):
    m = IntervalMap()
    ref = {}
    for lo, length, value in ops:
        m.assign(lo, lo + length, value)
        for addr in range(lo, lo + length):
            ref[addr] = value
    # Query result flattened per address equals the reference dict.
    got = {}
    for s, e, v in m.query(qlo, qlo + qlen):
        for addr in range(s, e):
            got[addr] = v
    expected = {a: v for a, v in ref.items() if qlo <= a < qlo + qlen}
    assert got == expected
    # Structural invariants: sorted, disjoint, coalesced.
    items = list(m)
    for (s1, e1, v1), (s2, e2, v2) in zip(items, items[1:]):
        assert s1 < e1 <= s2 < e2
        assert not (e1 == s2 and v1 == v2), "uncoalesced neighbours"
    assert m.total_length() == len(ref)


_ops_set = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=150),
        st.integers(min_value=0, max_value=30),
    ),
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(ops=_ops_set, probe=st.integers(0, 160))
def test_interval_set_matches_set_reference(ops, probe):
    s = IntervalSet()
    ref = set()
    for lo, length in ops:
        s.add(lo, lo + length)
        ref.update(range(lo, lo + length))
    assert s.measure() == len(ref)
    assert s.contains(probe) == (probe in ref)
    # Intervals stay maximal and disjoint.
    items = list(s)
    for (s1, e1), (s2, e2) in zip(items, items[1:]):
        assert s1 < e1 < s2 < e2


@settings(max_examples=100, deadline=None)
@given(ops=_ops_set, lo=st.integers(0, 150), length=st.integers(0, 40))
def test_interval_set_intersect_matches_reference(ops, lo, length):
    s = IntervalSet()
    ref = set()
    for alo, alen in ops:
        s.add(alo, alo + alen)
        ref.update(range(alo, alo + alen))
    expected = len(ref & set(range(lo, lo + length)))
    assert s.intersect_length(lo, lo + length) == expected
