"""Tests for wormhole switching on the mesh NoC."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.sim.noc import NocMesh, NocParams


def mk(transport="wormhole", **kw):
    eng = Engine()
    mesh = NocMesh(eng, NocParams(width=4, height=4, transport=transport, **kw))
    return eng, mesh


class TestConfiguration:
    def test_invalid_transport_rejected(self):
        with pytest.raises(ConfigurationError):
            NocParams(width=2, height=2, transport="carrier_pigeon")

    def test_wormhole_on_torus_rejected(self):
        with pytest.raises(ConfigurationError):
            NocParams(width=3, height=3, topology="torus", transport="wormhole")


class TestLatency:
    def test_send_matches_model(self):
        eng, mesh = mk()

        def proc():
            yield from mesh.send((0, 0), (3, 2), 2000)

        eng.process(proc())
        t = eng.run()
        assert t == pytest.approx(mesh.transfer_seconds((0, 0), (3, 2), 2000))

    def test_wormhole_faster_than_store_forward_multihop(self):
        _, wh = mk("wormhole")
        _, sf = mk("store_forward")
        nbytes = 4096
        t_wh = wh.transfer_seconds((0, 0), (3, 3), nbytes)
        t_sf = sf.transfer_seconds((0, 0), (3, 3), nbytes)
        assert t_wh < t_sf

    def test_equal_on_single_hop(self):
        _, wh = mk("wormhole")
        _, sf = mk("store_forward")
        assert wh.transfer_seconds((0, 0), (1, 0), 1024) == pytest.approx(
            sf.transfer_seconds((0, 0), (1, 0), 1024)
        )

    def test_all_path_links_record_traffic(self):
        eng, mesh = mk()

        def proc():
            yield from mesh.send((0, 0), (2, 0), 512)

        eng.process(proc())
        eng.run()
        assert mesh.links[((0, 0), (1, 0))].bytes_moved == 512
        assert mesh.links[((1, 0), (2, 0))].bytes_moved == 512


class TestBlocking:
    def test_head_of_line_blocking(self):
        """A worm holding its path delays a crossing flow for its whole
        serialization — the cost wormhole pays for its latency."""
        eng, mesh = mk(max_packet_bytes=65536)
        ends = {}

        def flow(tag, src, dst, nbytes, delay=0.0):
            if delay:
                yield delay
            yield from mesh.send(src, dst, nbytes, flow=tag)
            ends[tag] = eng.now

        # The long worm crosses (1,0)->(1,1)...(1,3); the short flow
        # needs (1,1)->(1,2) shortly after.
        eng.process(flow("long", (1, 0), (1, 3), 32 * 1024))
        eng.process(flow("short", (1, 1), (1, 2), 64, delay=1e-6))
        eng.run()
        solo = mesh.transfer_seconds((1, 1), (1, 2), 64)
        # The short flow had to wait out most of the worm.
        assert ends["short"] > 5 * solo

    def test_store_forward_interleaves_where_wormhole_blocks(self):
        def run(transport):
            eng, mesh = mk(transport, max_packet_bytes=1024)
            ends = {}

            def flow(tag, src, dst, nbytes, delay=0.0):
                if delay:
                    yield delay
                yield from mesh.send(src, dst, nbytes, flow=tag)
                ends[tag] = eng.now

            eng.process(flow("bulk", (1, 0), (1, 3), 32 * 1024))
            eng.process(flow("short", (1, 1), (1, 2), 64, delay=1e-6))
            eng.run()
            return ends["short"]

        # With per-hop arbitration the short flow slips between packets;
        # under wormhole it waits for whole path reservations.
        assert run("store_forward") < run("wormhole")


class TestDeadlockFreedom:
    @settings(max_examples=30, deadline=None)
    @given(
        flows=st.lists(
            st.tuples(
                st.integers(0, 3), st.integers(0, 3),
                st.integers(0, 3), st.integers(0, 3),
                st.integers(64, 8192),
            ),
            min_size=1, max_size=10,
        )
    )
    def test_random_flows_terminate(self, flows):
        """XY-ordered path reservation never deadlocks on the mesh."""
        eng, mesh = mk()
        expected = 0
        for sx, sy, dx, dy, nbytes in flows:
            if (sx, sy) == (dx, dy):
                continue
            expected += nbytes

            def proc(s=(sx, sy), d=(dx, dy), n=nbytes):
                yield from mesh.send(s, d, n)

            eng.process(proc())
        eng.run()  # raises DeadlockError on failure
        assert mesh.bytes_delivered == expected
