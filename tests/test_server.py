"""Tests for ``repro.server``: protocol, quota, admission, HTTP e2e.

The unit halves (protocol parsing, token-bucket math under a fake
clock, tenant sanitization, admission accounting) run with no sockets.
The e2e half boots one real server on an ephemeral port per test class
via :func:`repro.server.start_in_thread` and drives it with the
blocking :class:`repro.server.DesignClient` — the same path CI's smoke
job exercises externally.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ConfigurationError, ProtocolError, ServerError
from repro.flow import result_summary, run_experiment
from repro.io import canonical_json
from repro.obs.export import to_prometheus
from repro.server import (
    AdmissionController,
    DesignClient,
    QuotaManager,
    ServerConfig,
    sanitize_tenant,
    start_in_thread,
)
from repro.server import protocol
from repro.server.http import parse_sse_stream
from repro.server.quota import DEFAULT_TENANT, MAX_TENANT_CHARS
from repro.service.metrics import MetricsRegistry, metric_key


class TestProtocol:
    def test_design_request_roundtrip(self):
        job = protocol.parse_design_request({
            "app": "klt", "scale": 2, "seed": 7, "simulate": False,
            "params": {"bus_width_bytes": 4},
            "design": {"enable_sharing": False},
        })
        assert job.app == "klt" and job.scale == 2 and job.seed == 7
        assert not job.simulate
        assert job.params.bus_width_bytes == 4
        assert job.design_overrides == {"enable_sharing": False}

    def test_design_request_rejects_unknown_fields(self):
        with pytest.raises(ProtocolError) as err:
            protocol.parse_design_request({"app": "klt", "scle": 2})
        assert err.value.status == 400
        assert "scle" in str(err.value)

    def test_design_request_rejects_unknown_param(self):
        with pytest.raises(ProtocolError) as err:
            protocol.parse_design_request(
                {"app": "klt", "params": {"no_such_knob": 1}}
            )
        assert err.value.status == 400

    def test_design_request_needs_app(self):
        with pytest.raises(ProtocolError):
            protocol.parse_design_request({"scale": 1})

    def test_sweep_request_builds_grid(self):
        grid = protocol.parse_sweep_request({
            "apps": ["canny", "jpeg"], "scales": [1, 2],
            "param_grid": {"bus_width_bytes": [4, 8]},
        })
        assert grid.size() == 2 * 2 * 2

    def test_sweep_request_caps_grid_size(self):
        with pytest.raises(ProtocolError) as err:
            protocol.parse_sweep_request(
                {"apps": ["canny"], "scales": [1, 2]}, max_points=1
            )
        assert err.value.status == 413

    def test_decode_body_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            protocol.decode_body(b"[1, 2]")
        with pytest.raises(ProtocolError):
            protocol.decode_body(b"not json")

    def test_encode_is_canonical(self):
        doc = {"b": 1, "a": {"z": 0.1, "y": [1, 2]}}
        assert protocol.encode(doc) == canonical_json(doc).encode()

    def test_error_body_carries_retry_hint(self):
        doc = protocol.error_body(429, "slow down", retry_after_s=3.0)
        assert doc["status"] == 429
        assert doc["retry_after_s"] == 3.0
        assert "retry_after_s" not in protocol.error_body(400, "bad")


class TestSanitizeTenant:
    def test_passthrough(self):
        assert sanitize_tenant("team-a") == "team-a"

    def test_strips_control_characters(self):
        assert sanitize_tenant("evil\r\nSet-Cookie: x") == (
            "evilSet-Cookie: x"
        )
        assert sanitize_tenant("a\x00b\x1fc") == "abc"

    def test_empty_falls_back_to_default(self):
        assert sanitize_tenant("") == DEFAULT_TENANT
        assert sanitize_tenant("  \r\n ") == DEFAULT_TENANT

    def test_truncates(self):
        assert sanitize_tenant("x" * 500) == "x" * MAX_TENANT_CHARS

    def test_injection_cannot_forge_prometheus_series(self):
        """A hostile tenant id must not break exposition parsing.

        The two layers under test: ``sanitize_tenant`` drops newlines
        (no new exposition lines), and ``metric_key`` escapes quotes
        and backslashes (no label-value breakout). The forged sample
        must appear only as an escaped *value*, never as its own line.
        """
        hostile = 'a"} 1\nforged_metric{x="y'
        tenant = sanitize_tenant(hostile)
        assert "\n" not in tenant

        registry = MetricsRegistry()
        registry.incr("quota_rejections", labels={"tenant": tenant})
        text = to_prometheus(registry.snapshot())
        forged = [
            line for line in text.splitlines()
            if line.startswith("forged_metric")
        ]
        assert forged == [], text
        # The real series is present, with the payload safely quoted.
        assert 'quota_rejections{tenant="' in text
        key = metric_key("quota_rejections", {"tenant": tenant})
        assert '\\"' in key  # quote escaped, not terminating the value


class TestQuota:
    def test_burst_then_refusal(self):
        now = [0.0]
        quota = QuotaManager(rate=1.0, burst=2.0, clock=lambda: now[0])
        assert quota.allow("t") == (True, 0.0)
        assert quota.allow("t") == (True, 0.0)
        ok, retry = quota.allow("t")
        assert not ok
        assert retry == pytest.approx(1.0)

    def test_refill_restores_tokens(self):
        now = [0.0]
        quota = QuotaManager(rate=2.0, burst=1.0, clock=lambda: now[0])
        assert quota.allow("t")[0]
        assert not quota.allow("t")[0]
        now[0] = 0.5  # 2 tokens/s * 0.5s = 1 token back
        assert quota.allow("t")[0]

    def test_tenants_are_isolated(self):
        now = [0.0]
        quota = QuotaManager(rate=0.0, burst=1.0, clock=lambda: now[0])
        assert quota.allow("a")[0]
        assert not quota.allow("a")[0]
        assert quota.allow("b")[0]  # b has its own bucket
        assert quota.tenants() == ("a", "b")

    def test_zero_rate_never_refills(self):
        now = [0.0]
        quota = QuotaManager(rate=0.0, burst=1.0, clock=lambda: now[0])
        assert quota.allow("t")[0]
        now[0] = 1e9
        ok, retry = quota.allow("t")
        assert not ok and math.isinf(retry)

    def test_burst_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            QuotaManager(rate=1.0, burst=0.5)

    def test_remaining(self):
        now = [0.0]
        quota = QuotaManager(rate=1.0, burst=3.0, clock=lambda: now[0])
        assert quota.remaining("t") == 3.0
        quota.allow("t")
        assert quota.remaining("t") == pytest.approx(2.0)


class TestAdmission:
    def test_capacity_bound(self):
        adm = AdmissionController(max_inflight=2, max_queue=1)
        assert adm.try_acquire()[0]
        assert adm.try_acquire()[0]
        assert adm.try_acquire()[0]  # queue slot
        ok, retry = adm.try_acquire()
        assert not ok and retry >= 1.0
        assert adm.rejected == 1

    def test_release_frees_slot(self):
        adm = AdmissionController(max_inflight=1, max_queue=0)
        assert adm.try_acquire()[0]
        assert not adm.try_acquire()[0]
        adm.release(0.01)
        assert adm.try_acquire()[0]

    def test_retry_after_tracks_latency_ewma(self):
        adm = AdmissionController(
            max_inflight=1, max_queue=4, initial_latency_s=0.05
        )
        for _ in range(5):
            adm.try_acquire()
        adm.release(10.0)  # one slow request drags the EWMA up
        assert adm.latency_ewma_s > 2.0
        assert adm.retry_after_s() >= math.ceil(adm.latency_ewma_s * 3)

    def test_negative_duration_skips_ewma(self):
        adm = AdmissionController(initial_latency_s=0.05)
        adm.try_acquire()
        adm.release(-1.0)
        assert adm.latency_ewma_s == 0.05

    def test_drain(self):
        adm = AdmissionController(max_inflight=2, max_queue=2)
        adm.try_acquire()
        adm.start_drain()
        assert not adm.try_acquire()[0]
        assert not adm.drained()
        adm.release(0.01)
        assert adm.drained()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(max_queue=-1)


class TestSseParsing:
    def test_events_roundtrip(self):
        lines = [
            ": keep-alive\n",
            "event: point\n",
            'data: {"a": 1}\n',
            "\n",
            "event: done\n",
            'data: {"count": 1}\n',
            "\n",
        ]
        events = list(parse_sse_stream(lines))
        assert events == [
            ("point", '{"a": 1}'), ("done", '{"count": 1}')
        ]


@pytest.fixture(scope="module")
def server():
    """One shared server on an ephemeral port for the e2e tests."""
    config = ServerConfig(
        port=0, quota_rate=10_000.0, quota_burst=10_000.0,
        max_inflight=16, max_queue=64,
    )
    handle = start_in_thread(config)
    yield handle
    assert handle.stop() is True


class TestEndToEnd:
    def test_health_probes(self, server):
        client = DesignClient(server.url)
        assert client.healthz()
        assert client.readyz()

    def test_design_byte_identical_to_in_process(self, server):
        client = DesignClient(server.url, tenant="pytest")
        for app in ("canny", "jpeg", "klt", "fluid"):
            doc = client.design(app)
            assert doc["kind"] == "design-response"
            served = canonical_json(doc["summary"]).encode()
            local = canonical_json(
                result_summary(run_experiment(app))
            ).encode()
            assert served == local, app

    def test_design_rejects_unknown_app(self, server):
        client = DesignClient(server.url)
        with pytest.raises(ServerError) as err:
            client.design("netflix")
        assert err.value.status == 400

    def test_design_static_graph_source(self, server):
        client = DesignClient(server.url, tenant="pytest")
        doc = client.design("canny", simulate=False, graph_source="static")
        local = result_summary(
            run_experiment("canny", simulate=False, graph_source="static")
        )
        assert canonical_json(doc["summary"]) == canonical_json(local)
        traced = client.design("canny", simulate=False)
        # Separate fingerprints (separate cache entries), same result on
        # a deterministic app.
        assert doc["fingerprint"] != traced["fingerprint"]
        assert doc["summary"] == traced["summary"]

    def test_design_rejects_unknown_graph_source(self, server):
        client = DesignClient(server.url)
        with pytest.raises(ServerError) as err:
            client.design("canny", graph_source="psychic")
        assert err.value.status == 400

    def test_job_lookup_after_design(self, server):
        client = DesignClient(server.url, tenant="pytest")
        doc = client.design("klt")
        job = client.job(doc["fingerprint"])
        assert job is not None
        assert job["fingerprint"] == doc["fingerprint"]
        assert job["summary"] == doc["summary"]

    def test_job_lookup_unknown_is_none(self, server):
        client = DesignClient(server.url)
        assert client.job("0" * 64) is None

    def test_sweep_matches_designs(self, server):
        client = DesignClient(server.url, tenant="pytest")
        doc = client.sweep(["canny", "jpeg"], scales=[1])
        assert doc["count"] == 2
        apps = sorted(p["app"] for p in doc["points"])
        assert apps == ["canny", "jpeg"]

    def test_sweep_stream_is_incremental(self, server):
        client = DesignClient(server.url, tenant="pytest")
        events = list(client.sweep_stream(["klt", "fluid"], scales=[1]))
        names = [name for name, _ in events]
        assert names == ["point", "point", "done"]
        done = events[-1][1]
        assert done["count"] == 2
        point_doc = events[0][1]
        assert point_doc["app"] in ("klt", "fluid")

    def test_second_design_is_cache_hit(self, server):
        client = DesignClient(server.url, tenant="pytest")
        client.design("canny")
        doc = client.design("canny")
        assert doc["cached"] is True

    def test_metrics_exposition(self, server):
        client = DesignClient(server.url, tenant="pytest")
        client.design("canny")
        text = client.metrics()
        assert "# TYPE repro_http_requests counter" in text
        assert 'route="/v1/design"' in text
        assert "repro_cache_hits" in text
        assert "inflight_requests" in text

    def test_unknown_route_404(self, server):
        client = DesignClient(server.url)
        with pytest.raises(ServerError) as err:
            client._request("GET", "/v1/nope")
        assert err.value.status == 404

    def test_wrong_method_405(self, server):
        client = DesignClient(server.url)
        with pytest.raises(ServerError) as err:
            client._request("GET", "/v1/design")
        assert err.value.status == 405

    def test_malformed_json_400(self, server):
        import http.client

        conn = http.client.HTTPConnection(
            client_host(server), client_port(server), timeout=30
        )
        try:
            conn.request(
                "POST", "/v1/design", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            body = json.loads(resp.read())
            assert resp.status == 400
            assert body["kind"] == "error-response"
        finally:
            conn.close()


def client_host(server) -> str:
    return DesignClient(server.url).host


def client_port(server) -> int:
    return DesignClient(server.url).port


class TestRequestTelemetry:
    def test_envelope_echoes_client_trace_id(self, server):
        client = DesignClient(server.url, tenant="pytest")
        doc = client.design("canny")
        assert doc["trace_id"] == client.last_trace_id
        assert len(doc["trace_id"]) == 32
        # a new request mints a new trace
        doc2 = client.design("jpeg")
        assert doc2["trace_id"] == client.last_trace_id
        assert doc2["trace_id"] != doc["trace_id"]

    def test_explicit_traceparent_header_is_adopted(self, server):
        import http.client

        trace_id = "ab" * 16
        conn = http.client.HTTPConnection(
            client_host(server), client_port(server), timeout=30
        )
        try:
            conn.request(
                "POST", "/v1/design", body=json.dumps({"app": "canny"}),
                headers={"traceparent": f"00-{trace_id}-{'cd' * 8}-01"},
            )
            doc = json.loads(conn.getresponse().read())
        finally:
            conn.close()
        assert doc["trace_id"] == trace_id

    def test_malformed_traceparent_gets_fresh_trace_not_an_error(
        self, server
    ):
        import http.client

        conn = http.client.HTTPConnection(
            client_host(server), client_port(server), timeout=30
        )
        try:
            conn.request(
                "POST", "/v1/design", body=json.dumps({"app": "canny"}),
                headers={"traceparent": "not-a-traceparent"},
            )
            resp = conn.getresponse()
            doc = json.loads(resp.read())
        finally:
            conn.close()
        assert resp.status == 200
        assert len(doc["trace_id"]) == 32

    def test_error_body_carries_trace_id(self, server):
        client = DesignClient(server.url)
        with pytest.raises(ServerError):
            client.design("netflix")
        # the trace the client minted is the one the 400 came back on
        assert len(client.last_trace_id) == 32

    def test_sweep_stream_done_event_carries_trace_id(self, server):
        client = DesignClient(server.url, tenant="pytest")
        events = list(client.sweep_stream(["klt"], scales=[1]))
        assert events[-1][0] == "done"
        assert events[-1][1]["trace_id"] == client.last_trace_id

    def test_sweep_stream_points_carry_trace_id(self, server):
        """Every SSE ``point`` event echoes the request's trace id, so a
        consumer can correlate a partial stream with server telemetry
        even when the ``done`` event never arrives."""
        client = DesignClient(server.url, tenant="pytest")
        events = list(
            client.sweep_stream(["canny", "jpeg"], scales=[1])
        )
        points = [doc for name, doc in events if name == "point"]
        assert len(points) == 2
        for doc in points:
            assert doc["trace_id"] == client.last_trace_id
        # the non-stream path stays untouched: no trace_id per point
        batch = client.sweep(["canny", "jpeg"], scales=[1])
        assert all("trace_id" not in p for p in batch["points"])
        # and points are otherwise identical between the two paths
        strip = [
            {k: v for k, v in p.items() if k != "trace_id"}
            for p in points
        ]
        key = canonical_json
        assert sorted(map(key, strip)) == sorted(
            map(key, batch["points"])
        )

    def test_debug_endpoint_sections(self, server):
        client = DesignClient(server.url, tenant="pytest")
        client.design("canny")
        doc = client.debug()
        assert doc["kind"] == "debug-response"
        assert doc["trace_id"] == client.last_trace_id
        debug = doc["debug"]
        for section in ("uptime_s", "inflight_requests", "admission",
                        "batcher", "tenants", "cache", "service",
                        "events"):
            assert section in debug, section
        assert debug["uptime_s"] > 0
        assert debug["admission"]["max_inflight"] == 16
        assert debug["batcher"]["max_batch"] >= 1
        assert debug["service"]["last_mode"] in ("serial", "pool")
        # the debug request itself is in the in-flight table
        routes = [r["route"] for r in debug["inflight_requests"]]
        assert "/v1/debug" in routes
        counts = debug["events"]["counts"]
        assert counts.get("request_start", 0) > 0
        recent = debug["events"]["recent"]
        assert recent and all("kind" in e for e in recent)

    def test_metrics_carry_event_counts_and_exemplars(self, server):
        client = DesignClient(server.url, tenant="pytest")
        client.design("canny")
        text = client.metrics()
        assert 'runtime_events{kind="request_finish"}' in text
        lines = [
            l for l in text.splitlines()
            if l.startswith("repro_http_request_last_seconds{")
        ]
        assert any('route="/v1/design"' in l for l in lines), text
        # the exemplar label is a full 32-hex trace id
        label = next(l for l in lines if 'route="/v1/design"' in l)
        trace = label.split('trace_id="')[1].split('"')[0]
        assert len(trace) == 32

    def test_event_log_records_rejections(self):
        config = ServerConfig(port=0, quota_rate=0.001, quota_burst=1.0)
        with start_in_thread(config) as handle:
            client = DesignClient(handle.url, tenant="stingy")
            client.design("canny")
            with pytest.raises(ServerError):
                client.design("jpeg")
            doc = client.debug()
            counts = doc["debug"]["events"]["counts"]
            assert counts.get("quota_reject", 0) == 1
            kinds = [e["kind"] for e in doc["debug"]["events"]["recent"]]
            assert "quota_reject" in kinds
        assert handle.stop() is True

    def test_event_log_sink_written_on_drain(self, tmp_path):
        sink = tmp_path / "events.jsonl"
        config = ServerConfig(port=0, event_log_path=str(sink))
        with start_in_thread(config) as handle:
            client = DesignClient(handle.url, tenant="pytest")
            client.design("canny")
        assert handle.stop() is True
        docs = [json.loads(l) for l in sink.read_text().splitlines()]
        kinds = [d["kind"] for d in docs]
        assert "request_start" in kinds
        assert "request_finish" in kinds
        assert "drain_begin" in kinds
        assert kinds[-1] == "drain_done"
        finish = next(d for d in docs if d["kind"] == "request_finish"
                      and d["fields"].get("route") == "/v1/design")
        assert finish["trace_id"]
        assert finish["fields"]["status"] == 200


class TestTruncatedStream:
    def test_stream_ending_without_done_raises(self):
        """A dropped connection mid-stream must not look like success."""
        import socket
        import threading

        body = (
            b"event: point\r\n"
            b'data: {"app": "klt"}\r\n'
            b"\r\n"
        )  # one point, then the server "dies" — no done event
        head = (
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def serve_once():
            conn, _ = listener.accept()
            conn.recv(65536)  # drain the request
            conn.sendall(head + body)
            conn.close()

        thread = threading.Thread(target=serve_once, daemon=True)
        thread.start()
        try:
            client = DesignClient(f"http://127.0.0.1:{port}")
            with pytest.raises(ServerError) as err:
                list(client.sweep_stream(["klt"]))
            assert "truncated" in str(err.value)
        finally:
            thread.join(timeout=5)
            listener.close()

    def test_complete_stream_does_not_raise(self, server):
        client = DesignClient(server.url, tenant="pytest")
        events = list(client.sweep_stream(["canny"], scales=[1]))
        assert [name for name, _ in events][-1] == "done"


class TestQuotaOverHttp:
    def test_429_with_retry_after_and_metric_label(self):
        config = ServerConfig(port=0, quota_rate=0.001, quota_burst=1.0)
        with start_in_thread(config) as handle:
            client = DesignClient(handle.url, tenant="stingy")
            client.design("canny")
            with pytest.raises(ServerError) as err:
                client.design("jpeg")
            assert err.value.status == 429
            assert err.value.retry_after > 0
            text = client.metrics()
            assert 'repro_quota_rejections{tenant="stingy"} 1' in text
        assert handle.stop() is True

    def test_tenants_have_independent_buckets(self):
        config = ServerConfig(port=0, quota_rate=0.001, quota_burst=1.0)
        with start_in_thread(config) as handle:
            DesignClient(handle.url, tenant="a").design("canny")
            # tenant b still has its full (tiny) burst available
            doc = DesignClient(handle.url, tenant="b").design("canny")
            assert doc["cached"] is True  # same fingerprint, shared cache
        assert handle.stop() is True

    def test_hostile_tenant_header_cannot_forge_metrics(self):
        """Quote-breakout via X-Tenant stays inside the label value.

        (``http.client`` refuses to send raw newlines in a header, so
        the newline-stripping layer is covered by the
        ``sanitize_tenant`` unit tests; this exercises the
        quote/backslash escaping end to end.)
        """
        config = ServerConfig(port=0)
        with start_in_thread(config) as handle:
            hostile = 'x"} 1 forged_http_metric{t="y'
            client = DesignClient(handle.url, tenant=hostile)
            client.design("canny")
            text = client.metrics()
            assert not any(
                line.startswith("forged_http_metric")
                for line in text.splitlines()
            ), text
            # the payload survives only as an escaped label value
            assert 'tenant="x\\"} 1 forged_http_metric{t=\\"y"' in text
        assert handle.stop() is True


class TestDrain:
    def test_stop_reports_clean_drain_and_rejects_new_work(self):
        config = ServerConfig(port=0)
        handle = start_in_thread(config)
        client = DesignClient(handle.url)
        client.design("canny")
        assert handle.stop() is True
        # the socket is gone afterwards
        assert not client.healthz()
