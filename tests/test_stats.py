"""Tests for the simulation statistics collector."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.stats import SimulationStats, collect_stats
from repro.sim.systems import SystemParams, simulate_proposed


@pytest.fixture(scope="module")
def jpeg_run(request):
    all_results = request.getfixturevalue("all_results")
    r = all_results["jpeg"]
    components = {}
    times = simulate_proposed(
        r.plan, r.fitted.host_other_s, SystemParams(), components_out=components
    )
    return times, components


class TestCollect:
    def test_bus_counters_match_component(self, jpeg_run):
        times, components = jpeg_run
        stats = collect_stats(times, bus=components["bus"], noc=components["noc"])
        assert stats.bus_bytes == components["bus"].bytes_moved
        assert stats.bus_transactions == components["bus"].transactions
        assert stats.bus_transactions > 0

    def test_noc_counters_match_component(self, jpeg_run):
        times, components = jpeg_run
        noc = components["noc"]
        stats = collect_stats(times, bus=components["bus"], noc=noc)
        assert stats.noc_bytes == times.noc_bytes
        assert stats.noc_packets == noc.packets_delivered
        assert sum(l.bytes_moved for l in stats.links) >= stats.noc_bytes

    def test_busiest_link(self, jpeg_run):
        times, components = jpeg_run
        stats = collect_stats(times, noc=components["noc"])
        busiest = stats.busiest_link
        assert busiest is not None
        assert busiest.bytes_moved == max(l.bytes_moved for l in stats.links)

    def test_kernel_busy_matches_spans(self, jpeg_run):
        times, _ = jpeg_run
        stats = collect_stats(times)
        for name, (start, end) in times.kernel_spans.items():
            assert stats.kernel_busy[name] == pytest.approx(end - start)

    def test_parallelism_above_one_for_duplicated_app(self, jpeg_run):
        times, _ = jpeg_run
        stats = collect_stats(times)
        # jpeg's kernels overlap (duplication + dataflow), but kernels
        # also idle while waiting for the bus, so just require > 0.
        assert stats.parallelism() > 0

    def test_render_mentions_key_quantities(self, jpeg_run):
        times, components = jpeg_run
        stats = collect_stats(times, bus=components["bus"], noc=components["noc"])
        text = stats.render()
        assert "makespan" in text
        assert "bus" in text
        assert "busiest link" in text
        assert "parallelism" in text

    def test_without_components_portable_subset(self, jpeg_run):
        times, _ = jpeg_run
        stats = collect_stats(times)
        assert stats.bus_bytes == 0
        assert stats.links == ()
        assert stats.noc_bytes == times.noc_bytes

    def test_zero_makespan_rejected(self):
        stats = SimulationStats(
            label="x", makespan_s=0.0, bus_bytes=0, bus_transactions=0,
            bus_utilization=0.0, noc_bytes=0, noc_packets=0,
        )
        with pytest.raises(ConfigurationError):
            stats.parallelism()


class TestTorusAndDuplication:
    """Link accounting under torus routing and with duplicated kernels."""

    @pytest.fixture(scope="class")
    def torus_run(self):
        from repro.flow import run_experiment

        r = run_experiment(
            "jpeg", design_overrides={"noc_topology": "torus"}
        )
        components = {}
        times = simulate_proposed(
            r.plan, r.fitted.host_other_s, SystemParams(),
            components_out=components,
        )
        return r, times, components

    def test_plan_actually_torus(self, torus_run):
        r, _, _ = torus_run
        assert r.plan.noc is not None
        assert r.plan.noc.placement.torus

    def test_flits_follow_ceil_formula_on_torus(self, torus_run):
        _, times, components = torus_run
        noc = components["noc"]
        stats = collect_stats(times, noc=noc)
        assert stats.links
        flit_bytes = noc.params.link_width_bytes
        for link in stats.links:
            assert link.flits == -(-link.bytes_moved // flit_bytes)
            assert link.flits > 0

    def test_busiest_link_is_max_bytes_on_torus(self, torus_run):
        _, times, components = torus_run
        stats = collect_stats(times, noc=components["noc"])
        busiest = stats.busiest_link
        assert busiest in stats.links
        assert busiest.bytes_moved == max(l.bytes_moved for l in stats.links)
        # flits of the busiest link are consistent with its own bytes,
        # not with the aggregate.
        assert busiest.flits == -(
            -busiest.bytes_moved // components["noc"].params.link_width_bytes
        )

    def test_duplicated_kernel_copies_both_tracked(self, jpeg_run):
        times, _ = jpeg_run
        stats = collect_stats(times)
        copies = [k for k in stats.kernel_busy if k.startswith("huff_ac_dec#")]
        assert sorted(copies) == ["huff_ac_dec#0", "huff_ac_dec#1"]
        for name in copies:
            assert stats.kernel_busy[name] > 0

    def test_mesh_vs_torus_same_traffic_totals(self, jpeg_run, torus_run):
        # Routing topology changes *where* bytes travel, not *how many*
        # arrive: both runs deliver the same NoC payload.
        mesh_times, _ = jpeg_run
        _, torus_times, _ = torus_run
        assert torus_times.noc_bytes == mesh_times.noc_bytes
