"""Tests for the time-resolved simulation profiler.

The acceptance criteria from the profiler's design live here: for all
four applications, the simulated communication matrix conserves the
input graph's bytes pair-exactly, the critical-path attribution sums to
the makespan within 1e-9 relative, and profiling never changes the
simulation (makespans bit-identical with it on or off).
"""

from __future__ import annotations

import json
import sys

import pytest

from repro.apps.registry import APP_NAMES
from repro.errors import ConfigurationError
from repro.flow import run_experiment
from repro.obs.profile import NULL_RECORDER, NullRecorder, TimeseriesRecorder
from repro.obs.profile.commmatrix import (
    MatrixEntry,
    build_matrix,
    check_conservation,
    pair_totals,
)
from repro.obs.profile.critical import extract_critical_path
from repro.obs.profile.report import (
    PROFILE_KIND,
    PROFILE_SET_KIND,
    build_profile,
    profile_from_dict,
    profile_set_from_dict,
    profile_set_to_dict,
    profile_to_dict,
    render_decisions_with_profile,
    render_html_report,
    render_profile_text,
)
from repro.obs.profile.timeseries import build_timeseries, is_busy_kind


@pytest.fixture(scope="module")
def profiled_results():
    """Profiled experiment runs for all four applications."""
    return {name: run_experiment(name, profile=True) for name in APP_NAMES}


# -- acceptance criteria ------------------------------------------------------


class TestAcceptance:
    @pytest.mark.parametrize("app", APP_NAMES)
    @pytest.mark.parametrize("system", ["baseline", "proposed"])
    def test_byte_conservation_exact(self, profiled_results, app, system):
        profile = profiled_results[app].profiles[system]
        assert profile.conservation.ok, profile.conservation.mismatches
        assert profile.conservation.mismatches == ()
        assert profile.conservation.checked_pairs > 0

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_proposed_pairs_match_plan_graph(self, profiled_results, app):
        """Every kernel→kernel edge of the (post-duplication) plan graph
        arrives with exactly the promised bytes, and host traffic matches
        the D^H quantities."""
        result = profiled_results[app]
        graph = result.plan.graph
        observed = pair_totals(result.profiles["proposed"].matrix)
        for (p, c), want in graph.kk_edges.items():
            if want > 0:
                assert observed[(p, c)] == want
        for k in graph.kernel_names():
            if graph.d_h_in(k) > 0:
                assert observed[("host", k)] == graph.d_h_in(k)
            if graph.d_h_out(k) > 0:
                assert observed[(k, "host")] == graph.d_h_out(k)

    @pytest.mark.parametrize("app", APP_NAMES)
    @pytest.mark.parametrize("system", ["baseline", "proposed"])
    def test_attribution_sums_to_makespan(self, profiled_results, app, system):
        profile = profiled_results[app].profiles[system]
        rel_err = abs(profile.attribution_total_s - profile.makespan_s)
        rel_err /= profile.makespan_s
        assert rel_err <= 1e-9

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_critical_path_partitions_makespan(self, profiled_results, app):
        for profile in profiled_results[app].profiles.values():
            segments = profile.critical_path
            assert segments[0].start_s == pytest.approx(0.0, abs=1e-15)
            assert segments[-1].end_s == pytest.approx(profile.makespan_s)
            for prev, nxt in zip(segments, segments[1:]):
                assert nxt.start_s == pytest.approx(prev.end_s)

    @pytest.mark.parametrize("app", APP_NAMES)
    def test_makespans_bit_identical_with_profiling(
        self, profiled_results, all_results, app
    ):
        """Profiling is pure bookkeeping — it must not perturb the
        discrete-event schedule at all."""
        plain, profiled = all_results[app], profiled_results[app]
        assert profiled.sim_baseline.kernels_s == plain.sim_baseline.kernels_s
        assert profiled.sim_proposed.kernels_s == plain.sim_proposed.kernels_s
        assert profiled.sim_proposed.kernel_spans == plain.sim_proposed.kernel_spans

    def test_profiles_absent_by_default(self, all_results):
        assert all_results["jpeg"].profiles == {}


# -- recorder -----------------------------------------------------------------


class TestRecorder:
    def test_zero_length_activity_dropped(self):
        rec = TimeseriesRecorder()
        rec.activity("bus", "plb", 1.0, 1.0)
        rec.activity("bus", "plb", 1.0, 2.0)
        assert len(rec.activities) == 1

    def test_zero_byte_delivery_dropped(self):
        rec = TimeseriesRecorder()
        rec.delivery(0.0, "a", "b", 0, "bus")
        rec.delivery(0.0, "a", "b", 4, "bus")
        assert len(rec.deliveries) == 1

    def test_null_recorder_disabled_and_stateless(self):
        assert NULL_RECORDER.enabled is False
        assert isinstance(NULL_RECORDER, NullRecorder)
        NULL_RECORDER.activity("bus", "plb", 0.0, 1.0)
        NULL_RECORDER.occupancy("plb", 0.0, 1, 2)
        NULL_RECORDER.delivery(0.0, "a", "b", 4, "bus")
        # __slots__ = () — there is nowhere for per-event state to go.
        assert not hasattr(NULL_RECORDER, "__dict__")
        assert not hasattr(NULL_RECORDER, "activities")

    def test_null_recorder_no_per_event_allocation(self):
        for _ in range(64):  # warm up call sites / specializations
            NULL_RECORDER.activity("bus", "plb", 0.0, 1.0, "d")
        before = sys.getallocatedblocks()
        for _ in range(2048):
            NULL_RECORDER.activity("bus", "plb", 0.0, 1.0, "d")
            NULL_RECORDER.occupancy("plb", 0.0, 1, 2)
            NULL_RECORDER.delivery(0.0, "a", "b", 4, "bus")
        grown = sys.getallocatedblocks() - before
        assert grown <= 8  # unrelated interpreter noise only

    def test_components_default_to_null_recorder(self, jpeg_result):
        from repro.sim.systems import SystemParams, simulate_proposed

        components = {}
        simulate_proposed(
            jpeg_result.plan, jpeg_result.fitted.host_other_s,
            SystemParams(), components_out=components,
        )
        assert components["bus"].recorder is NULL_RECORDER


# -- timeseries ---------------------------------------------------------------


class TestTimeseries:
    def test_exact_bucketing(self):
        # One span covering the first half: buckets (1, 1, 0, 0).
        lanes = build_timeseries(
            [("bus", "plb", 0.0, 0.5, "")], [], 1.0, buckets=4
        )
        (series,) = lanes
        assert series.lane == "plb"
        assert series.buckets == pytest.approx((1.0, 1.0, 0.0, 0.0))
        assert series.busy_s == pytest.approx(0.5)
        assert series.utilization == pytest.approx(0.5)

    def test_bucket_sum_conserves_busy_time(self):
        spans = [
            ("bus", "plb", 0.03, 0.41, ""),
            ("bus", "plb", 0.55, 0.78, ""),
            ("compute", "k", 0.1, 0.97, ""),
        ]
        for buckets in (1, 3, 7, 64):
            for series in build_timeseries(spans, [], 1.0, buckets=buckets):
                bucket_w = 1.0 / buckets
                assert sum(series.buckets) * bucket_w == pytest.approx(
                    series.busy_s
                )

    def test_wait_kinds_are_not_busy(self):
        assert not is_busy_kind("bus_wait")
        assert is_busy_kind("bus")
        # A lane seen only waiting has no busy time to chart at all;
        # its waits surface via occupancy and the critical path instead.
        assert build_timeseries(
            [("bus_wait", "plb", 0.0, 1.0, "")], [], 1.0, buckets=4
        ) == ()

    def test_queue_watermarks(self):
        samples = [
            (0.1, "plb", 1, 0),
            (0.2, "plb", 1, 3),
            (0.3, "plb", 2, 1),
        ]
        (series,) = build_timeseries([], samples, 1.0, buckets=2)
        assert series.peak_queue == 3
        assert series.peak_queue_t_s == pytest.approx(0.2)
        assert series.peak_in_use == 2

    def test_sorted_by_busy_time(self):
        lanes = build_timeseries(
            [("bus", "quiet", 0.0, 0.1, ""), ("bus", "loud", 0.0, 0.9, "")],
            [], 1.0, buckets=4,
        )
        assert [s.lane for s in lanes] == ["loud", "quiet"]

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            build_timeseries([], [], 1.0, buckets=0)
        with pytest.raises(ConfigurationError):
            build_timeseries([], [], 0.0)


# -- critical path ------------------------------------------------------------


class TestCriticalPath:
    def test_gap_becomes_unattributed(self):
        spans = [("compute", "k", 0.0, 0.4, ""), ("bus", "plb", 0.6, 1.0, "")]
        segments, attribution = extract_critical_path(spans, 1.0)
        kinds = [s.kind for s in segments]
        assert kinds == ["compute", "unattributed", "bus"]
        assert attribution["unattributed"] == pytest.approx(0.2)
        assert sum(attribution.values()) == pytest.approx(1.0)

    def test_work_preferred_over_wait_on_ties(self):
        spans = [
            ("bus_wait", "plb", 0.0, 1.0, ""),
            ("bus", "plb", 0.0, 1.0, ""),
        ]
        segments, _ = extract_critical_path(spans, 1.0)
        assert [s.kind for s in segments] == ["bus"]

    def test_unknown_kind_gets_own_category(self):
        segments, attribution = extract_critical_path(
            [("custom", "x", 0.0, 1.0, "")], 1.0
        )
        assert attribution["custom"] == pytest.approx(1.0)
        assert segments[0].kind == "custom"

    def test_empty_activities_fully_unattributed(self):
        segments, attribution = extract_critical_path([], 1.0)
        assert [s.kind for s in segments] == ["unattributed"]
        assert attribution["unattributed"] == pytest.approx(1.0)


# -- communication matrix -----------------------------------------------------


class TestCommMatrix:
    def test_build_matrix_aggregates_and_sorts(self):
        matrix = build_matrix([
            (0.2, "b", "c", 10, "noc"),
            (0.1, "a", "b", 4, "bus"),
            (0.3, "a", "b", 6, "bus"),
        ])
        assert matrix == (
            MatrixEntry("a", "b", "bus", 10),
            MatrixEntry("b", "c", "noc", 10),
        )

    def test_mismatch_detected(self, fitted_apps):
        graph = fitted_apps["jpeg"].graph
        (p, c), want = next(iter(graph.kk_edges.items()))
        short = build_matrix([(0.0, p, c, want - 1, "bus")])
        report = check_conservation(short, graph, mode="direct")
        assert not report.ok
        assert any(f"{p}->{c}" in m for m in report.mismatches)

    def test_unexpected_pair_is_mismatch(self, fitted_apps):
        graph = fitted_apps["jpeg"].graph
        bogus = build_matrix([(0.0, "ghost", "phantom", 64, "bus")])
        report = check_conservation(bogus, graph, mode="mediated")
        assert not report.ok
        assert any("ghost->phantom" in m for m in report.mismatches)

    def test_unknown_mode_rejected(self, fitted_apps):
        with pytest.raises(ConfigurationError):
            check_conservation((), fitted_apps["jpeg"].graph, mode="psychic")


# -- serialization ------------------------------------------------------------


class TestSerialization:
    def test_profile_round_trip(self, profiled_results):
        profile = profiled_results["jpeg"].profiles["proposed"]
        data = profile_to_dict(profile)
        assert data["kind"] == PROFILE_KIND
        json.dumps(data)  # JSON-safe
        assert profile_from_dict(data) == profile

    def test_profile_set_round_trip(self, profiled_results):
        profiles = profiled_results["canny"].profiles
        data = profile_set_to_dict("canny", profiles)
        assert data["kind"] == PROFILE_SET_KIND
        assert profile_set_from_dict(json.loads(json.dumps(data))) == dict(
            profiles
        )

    def test_wrong_kind_rejected(self, profiled_results):
        data = profile_to_dict(profiled_results["jpeg"].profiles["baseline"])
        data["kind"] = "plan"
        with pytest.raises(ConfigurationError):
            profile_from_dict(data)


# -- build_profile guards -----------------------------------------------------


class TestBuildProfile:
    def test_zero_makespan_rejected(self, profiled_results, fitted_apps):
        import dataclasses

        times = profiled_results["jpeg"].sim_proposed
        broken = dataclasses.replace(times, kernels_s=0.0)
        with pytest.raises(ConfigurationError):
            build_profile(
                "jpeg", broken, TimeseriesRecorder(),
                fitted_apps["jpeg"].graph,
            )

    def test_bucket_count_respected(self, profiled_results):
        r = profiled_results["jpeg"]
        assert all(
            len(lane.buckets) == 64
            for p in r.profiles.values()
            for lane in p.lanes
        )


# -- renderers ----------------------------------------------------------------


class TestRenderers:
    def test_text_report_mentions_key_sections(self, profiled_results):
        text = render_profile_text(profiled_results["jpeg"].profiles["proposed"])
        assert "critical-path attribution" in text
        assert "byte conservation [direct]: ok" in text
        assert "communication matrix" in text
        assert "kernel timeline" in text

    def test_html_report_self_contained(self, profiled_results):
        html = render_html_report("jpeg", profiled_results["jpeg"].profiles)
        assert html.startswith("<!DOCTYPE html>")
        assert "baseline" in html and "proposed" in html
        assert "<script" not in html and "http" not in html.split("</title>")[1]

    def test_html_escapes_names(self, profiled_results):
        profile = profiled_results["jpeg"].profiles["proposed"]
        import dataclasses

        hostile = dataclasses.replace(profile, app="<img onerror=x>")
        html = render_html_report(
            "<img onerror=x>", {"proposed": hostile}
        )
        assert "<img onerror" not in html

    def test_decisions_with_profile_cites_evidence(self, profiled_results):
        r = profiled_results["jpeg"]
        text = render_decisions_with_profile(r.plan, r.profiles)
        assert "bus on the critical path" in text
        assert "measured:" in text
        assert "shared local memory" in text

    def test_decisions_need_proposed_profile(self, profiled_results):
        r = profiled_results["jpeg"]
        with pytest.raises(ConfigurationError):
            render_decisions_with_profile(r.plan, {})

    def test_decisions_zero_noc_app_gets_explicit_section(
        self, profiled_results
    ):
        # Regression: klt's design has no NoC; the [noc] skipped line
        # must still carry measured evidence saying so outright instead
        # of silently rendering bare.
        r = profiled_results["klt"]
        assert r.plan.noc is None
        text = render_decisions_with_profile(r.plan, r.profiles)
        noc_lines = [
            (i, line) for i, line in enumerate(text.splitlines())
            if line.startswith("[noc]")
        ]
        assert len(noc_lines) == 1
        i, line = noc_lines[0]
        assert "skipped" in line
        measured = text.splitlines()[i + 1]
        assert "no NoC was instantiated" in measured
        assert "shared local memories" in measured
        assert "crossed the bus" in measured


# -- service persistence ------------------------------------------------------


class TestServiceProfiles:
    def test_profile_dir_persists_and_round_trips(self, tmp_path):
        from repro.io import load_json
        from repro.service import DesignService
        from repro.service.jobs import DesignJob

        service = DesignService(jobs=1, profile_dir=tmp_path / "profiles")
        result = service.submit(DesignJob(app="jpeg"))
        assert sorted(result.profiles) == ["baseline", "proposed"]
        files = list((tmp_path / "profiles").glob("*.profile.json"))
        assert len(files) == 1
        assert files[0].stem.split(".")[0] == result.fingerprint
        profiles = profile_set_from_dict(load_json(files[0]))
        assert profiles["proposed"].conservation.ok

    def test_cache_hits_carry_no_profiles(self, tmp_path):
        from repro.service import DesignService
        from repro.service.jobs import DesignJob

        service = DesignService(jobs=1, profile_dir=tmp_path)
        job = DesignJob(app="canny", simulate=True)
        service.submit(job)
        hit = service.submit(job)
        assert hit.cached
        assert hit.profiles == {}

    def test_no_profile_dir_no_profiles(self):
        from repro.service import DesignService
        from repro.service.jobs import DesignJob

        result = DesignService(jobs=1).submit(DesignJob(app="jpeg"))
        assert result.profiles == {}


# -- CLI ----------------------------------------------------------------------


class TestCli:
    def test_profile_sim_text(self, capsys):
        from repro.cli import main

        assert main(["profile", "jpeg", "--sim"]) == 0
        out = capsys.readouterr().out
        assert "critical-path attribution" in out
        assert "[jpeg/baseline]" in out and "[jpeg/proposed]" in out

    def test_profile_json(self, capsys):
        from repro.cli import main

        assert main(["profile", "canny", "--json", "--buckets", "16"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == PROFILE_SET_KIND
        profiles = profile_set_from_dict(data)
        assert all(p.conservation.ok for p in profiles.values())
        assert len(profiles["proposed"].lanes[0].buckets) == 16

    def test_profile_html(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "report.html"
        assert main(["profile", "klt", "--html", str(out)]) == 0
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_profile_default_still_quad(self, capsys):
        from repro.cli import main

        assert main(["profile", "jpeg"]) == 0
        out = capsys.readouterr().out
        assert "critical-path attribution" not in out

    def test_explain_with_profile(self, capsys):
        from repro.cli import main

        assert main(["explain", "jpeg", "--with-profile"]) == 0
        out = capsys.readouterr().out
        assert "measured:" in out

    def test_explain_with_profile_conflicts(self, capsys):
        from repro.cli import main

        assert main(["explain", "jpeg", "--with-profile", "--json"]) == 1

    def test_sweep_profile_dir_requires_simulate(self, capsys, tmp_path):
        from repro.cli import main

        code = main([
            "sweep", "--apps", "jpeg", "--param", "bus_width_bytes=4",
            "--profile-dir", str(tmp_path / "profs"),
            "--output", str(tmp_path / "s.csv"),
        ])
        assert code == 1
        assert "add --simulate" in capsys.readouterr().err
        assert not (tmp_path / "profs").exists()

    def test_bench_writes_report_and_gates(self, capsys, tmp_path):
        from repro.bench import BENCH_KIND
        from repro.cli import main

        out = tmp_path / "bench.json"
        code = main([
            "bench", "--apps", "jpeg", "--repeat", "1",
            "--out", str(out), "--max-overhead", "1000",
        ])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["kind"] == BENCH_KIND
        row = data["apps"]["jpeg"]
        assert set(row) == {
            "design_s", "sim_baseline_s", "sim_proposed_s",
            "sim_fastcore_s", "sim_fastcore_proposed_s",
            "fastcore_speedup", "sim_proposed_profiled_s",
            "profile_build_s", "profiler_overhead", "lint_s",
            "trace_fit_s", "static_s", "static_speedup",
        }
        assert row["static_s"] > 0 and row["trace_fit_s"] > 0
        assert all(field in data["schema"] for field in (
            "apps.<name>.profiler_overhead", "service.batch_cold_s",
            "apps.<name>.static_s", "apps.<name>.static_speedup",
        ))
        assert "profiler overhead gate ok" in capsys.readouterr().out

    def test_bench_gate_failure_exit_code(self, capsys, tmp_path):
        from repro.cli import main

        # An impossible bound must trip the gate.
        code = main([
            "bench", "--apps", "jpeg", "--repeat", "1",
            "--max-overhead", "0.0001",
        ])
        assert code == 1
        assert "FAIL" in capsys.readouterr().err
