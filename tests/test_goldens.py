"""Golden regression tests for the four paper applications.

``tests/goldens/design_digests.json`` pins the structural design
decisions (solution, BOM, sharing pairs, mappings, NoC membership) and
the headline resource/traffic numbers. Everything in the pipeline is
deterministic, so any diff here means a behaviour change — if the
change is intentional, regenerate the goldens with the snippet in this
module's docstring::

    python - <<'PY'
    # see tests/goldens/README for the regeneration script
    PY
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.apps.registry import APP_NAMES

GOLDEN_PATH = pathlib.Path(__file__).parent / "goldens" / "design_digests.json"


def plan_digest(plan):
    """The structural digest pinned by the golden file."""
    return {
        "solution": plan.solution_label(),
        "components": {
            k.value: v
            for k, v in sorted(
                plan.component_counts().items(), key=lambda kv: kv[0].value
            )
        },
        "sharing": sorted(
            [l.producer, l.consumer, l.bytes, l.crossbar] for l in plan.sharing
        ),
        "duplicated": sorted(d.kernel for d in plan.duplications if d.applied),
        "mappings": {
            name: [
                m.receive.name, m.send.name,
                m.attach_kernel.name, m.attach_memory.name,
            ]
            for name, m in sorted(plan.mappings.items())
        },
        "noc_kernels": sorted(plan.noc.kernel_nodes) if plan.noc else [],
        "noc_memories": sorted(plan.noc.memory_nodes) if plan.noc else [],
        "mux_kernels": sorted(plan.mux_kernels()),
    }


@pytest.fixture(scope="module")
def goldens():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("name", APP_NAMES)
class TestGoldenDigests:
    def test_plan_structure(self, name, goldens, all_results):
        got = plan_digest(all_results[name].plan)
        want = goldens[name]["plan"]
        # json round-trips lists, so normalize tuples.
        assert json.loads(json.dumps(got)) == want

    def test_resource_totals(self, name, goldens, all_results):
        r = all_results[name]
        assert r.synth_baseline.total.luts == goldens[name]["baseline_luts"]
        assert r.synth_proposed.total.luts == goldens[name]["proposed_luts"]
        assert r.synth_noc_only.total.luts == goldens[name]["noc_only_luts"]

    def test_profiled_traffic(self, name, goldens, all_results):
        assert (
            all_results[name].fitted.graph.total_kernel_traffic()
            == goldens[name]["traffic_bytes"]
        )

    def test_noc_only_router_count(self, name, goldens, all_results):
        assert (
            all_results[name].noc_only_plan.noc.router_count
            == goldens[name]["noc_only_routers"]
        )
