"""Integration tests: the paper's published result *shapes*.

These are the acceptance criteria from DESIGN.md §4 — who wins, by
roughly what factor, where the qualitative crossovers fall. Absolute
agreement with the paper's board is not expected (our substrate is a
simulator); each tolerance below brackets the paper's value.
"""

from __future__ import annotations

import pytest

from repro.hw.resources import ComponentKind
from repro.units import percent_saving

#: Paper Table III, verbatim.
TABLE3 = {
    "canny": (3.15, 3.88, 1.83, 2.12),
    "jpeg": (2.33, 2.50, 2.87, 3.08),
    "klt": (3.72, 6.58, 1.26, 1.55),
    "fluid": (1.66, 1.68, 1.59, 1.60),
}

#: Paper Table IV solution column.
SOLUTIONS = {
    "canny": "NoC, SM, P",
    "jpeg": "NoC, SM, P",
    "klt": "SM",
    "fluid": "NoC",
}


class TestFig4BaselineShapes:
    def test_jpeg_baseline_slower_than_software(self, all_results):
        """The paper's headline anomaly: jpeg baseline loses to SW."""
        assert all_results["jpeg"].baseline_vs_sw.application < 1.0

    def test_other_apps_baseline_faster_than_software(self, all_results):
        for name in ("canny", "klt", "fluid"):
            assert all_results[name].baseline_vs_sw.application > 1.0

    def test_jpeg_ratio_is_3_63(self, all_results):
        assert all_results["jpeg"].comm_comp_ratio == pytest.approx(3.63, rel=0.01)

    def test_average_ratio_about_2_09(self, all_results):
        avg = sum(r.comm_comp_ratio for r in all_results.values()) / 4
        assert avg == pytest.approx(2.09, abs=0.05)

    def test_max_kernel_speedup_about_4_2(self, all_results):
        best = max(r.baseline_vs_sw.kernels for r in all_results.values())
        assert best == pytest.approx(4.23, rel=0.05)

    def test_communication_dominates_computation_on_average(self, all_results):
        """Fig. 4's message: comm time > comp time in the baseline."""
        avg = sum(r.comm_comp_ratio for r in all_results.values()) / 4
        assert avg > 1.0


class TestTable3Speedups:
    @pytest.mark.parametrize("name", list(TABLE3))
    def test_within_15_percent_of_paper(self, all_results, name):
        paper_app_sw, paper_k_sw, paper_app_b, paper_k_b = TABLE3[name]
        r = all_results[name]
        assert r.proposed_vs_sw.application == pytest.approx(paper_app_sw, rel=0.15)
        assert r.proposed_vs_sw.kernels == pytest.approx(paper_k_sw, rel=0.15)
        assert r.proposed_vs_baseline.application == pytest.approx(
            paper_app_b, rel=0.15
        )
        assert r.proposed_vs_baseline.kernels == pytest.approx(paper_k_b, rel=0.15)

    def test_jpeg_wins_most_vs_baseline(self, all_results):
        jpeg = all_results["jpeg"].proposed_vs_baseline.application
        for name in ("canny", "klt", "fluid"):
            assert jpeg > all_results[name].proposed_vs_baseline.application

    def test_klt_wins_most_vs_software(self, all_results):
        klt = all_results["klt"].proposed_vs_sw.kernels
        for name in ("canny", "jpeg", "fluid"):
            assert klt > all_results[name].proposed_vs_sw.kernels

    def test_all_apps_beat_baseline(self, all_results):
        for r in all_results.values():
            assert r.proposed_vs_baseline.application > 1.0
            assert r.proposed_vs_baseline.kernels > 1.0

    def test_headline_numbers(self, all_results):
        """Abstract: 3.72x vs SW and 2.87x vs baseline (both maxima)."""
        best_sw = max(
            r.proposed_vs_sw.application for r in all_results.values()
        )
        best_base = max(
            r.proposed_vs_baseline.application for r in all_results.values()
        )
        assert best_sw == pytest.approx(3.72, rel=0.10)
        assert best_base == pytest.approx(2.87, rel=0.15)


class TestTable4Resources:
    @pytest.mark.parametrize("name", list(SOLUTIONS))
    def test_solution_column(self, all_results, name):
        assert all_results[name].plan.solution_label() == SOLUTIONS[name]

    def test_ordering_baseline_ours_noconly(self, all_results):
        for r in all_results.values():
            assert r.synth_baseline.total.luts <= r.synth_proposed.total.luts
            assert r.synth_proposed.total.luts <= r.synth_noc_only.total.luts

    def test_klt_adds_exactly_one_crossbar(self, all_results):
        """Paper: KLT ours-baseline = 200 LUTs (one crossbar + nothing)."""
        r = all_results["klt"]
        delta = r.synth_proposed.total.luts - r.synth_baseline.total.luts
        assert delta == 201  # Table II crossbar
        counts = r.plan.component_counts()
        assert counts.get(ComponentKind.ROUTER, 0) == 0
        assert counts[ComponentKind.CROSSBAR] == 1

    def test_max_lut_saving_vs_noc_only_about_a_third(self, all_results):
        """Paper: 'saves up to 33.1% LUTs' vs the NoC-only system (KLT)."""
        savings = {
            name: percent_saving(
                r.synth_noc_only.total.luts, r.synth_proposed.total.luts
            )
            for name, r in all_results.items()
        }
        assert max(savings, key=savings.get) == "klt"
        assert savings["klt"] == pytest.approx(33.1, abs=4.0)

    def test_fluid_saving_smallest(self, all_results):
        savings = {
            name: percent_saving(
                r.synth_noc_only.total.luts, r.synth_proposed.total.luts
            )
            for name, r in all_results.items()
        }
        assert min(savings, key=savings.get) == "fluid"

    def test_baseline_column_matches_paper_exactly(self, all_results):
        paper = {
            "canny": (9926, 12707),
            "jpeg": (11755, 11910),
            "klt": (4721, 5430),
            "fluid": (19125, 28793),
        }
        for name, (luts, regs) in paper.items():
            total = all_results[name].synth_baseline.total
            assert (total.luts, total.regs) == (luts, regs)


class TestFig8InterconnectRatio:
    def test_ratio_bounded(self, all_results):
        """Paper: interconnect uses at most ~40.7% of kernel resources."""
        worst = max(
            r.synth_proposed.interconnect_over_kernels
            for r in all_results.values()
        )
        assert worst == pytest.approx(0.407, abs=0.06)

    def test_klt_ratio_smallest(self, all_results):
        ratios = {
            n: r.synth_proposed.interconnect_over_kernels
            for n, r in all_results.items()
        }
        assert min(ratios, key=ratios.get) == "klt"


class TestFig9Energy:
    def test_all_apps_save_energy(self, all_results):
        for r in all_results.values():
            assert r.energy.saving_percent > 0

    def test_jpeg_saves_most_about_66(self, all_results):
        savings = {n: r.energy.saving_percent for n, r in all_results.items()}
        assert max(savings, key=savings.get) == "jpeg"
        assert savings["jpeg"] == pytest.approx(66.5, abs=3.0)

    def test_power_increase_minor(self, all_results):
        """Paper: 'the power consumption is almost identical, with a
        minor increase in our system'."""
        for r in all_results.values():
            e = r.energy
            assert e.proposed_power_w >= e.baseline_power_w
            assert (e.proposed_power_w - e.baseline_power_w) / e.baseline_power_w < 0.08


class TestSimulationAgreement:
    """The DES and the analytic model must tell the same story."""

    def test_baseline_sim_matches_model(self, all_results):
        for r in all_results.values():
            assert r.sim_baseline.kernels_s == pytest.approx(
                r.analytic_baseline.kernels_s, rel=0.05
            )

    def test_proposed_sim_within_envelope(self, all_results):
        for r in all_results.values():
            assert r.sim_proposed.kernels_s == pytest.approx(
                r.analytic_proposed.kernels_s, rel=0.5
            )

    def test_simulated_speedups_same_direction(self, all_results):
        for r in all_results.values():
            app, kern = r.sim_proposed.speedup_over(r.sim_baseline)
            assert app > 1.0
            assert kern > 1.0

    def test_simulated_jpeg_still_wins(self, all_results):
        speedups = {
            n: r.sim_proposed.speedup_over(r.sim_baseline)[1]
            for n, r in all_results.items()
        }
        assert max(speedups, key=speedups.get) == "jpeg"
