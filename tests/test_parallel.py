"""Tests for pipelining cases 1-2 (Δ_p1 / Δ_p2)."""

from __future__ import annotations

import pytest

from repro.core import CommGraph, KernelSpec, find_pipeline_opportunities
from repro.core.parallel import (
    PipelineCase,
    delta_p1_seconds,
    delta_p2_seconds,
    total_pipeline_gain,
)
from repro.units import KERNEL_CLOCK

THETA = 1e-8  # 10 ns / byte


def sec(cycles):
    return KERNEL_CLOCK.cycles_to_seconds(cycles)


class TestDeltaFormulas:
    def test_p1_transfer_bound(self):
        # Small transfers: gain is the transfer halves.
        tau = 1_000_000.0
        d = delta_p1_seconds(1000, 2000, tau, THETA, 0.0)
        assert d == pytest.approx((1000 * THETA + 2000 * THETA) / 2)

    def test_p1_compute_bound(self):
        # Huge transfers: gain saturates at tau/2 per direction.
        tau = 100.0
        d = delta_p1_seconds(10**9, 10**9, tau, THETA, 0.0)
        assert d == pytest.approx(sec(tau))  # tau/2 + tau/2

    def test_p1_overhead_subtracts(self):
        base = delta_p1_seconds(1000, 0, 10**6, THETA, 0.0)
        assert delta_p1_seconds(1000, 0, 10**6, THETA, 1e-6) == pytest.approx(
            base - 1e-6
        )

    def test_p2_min_of_taus(self):
        assert delta_p2_seconds(100.0, 300.0, 0.0) == pytest.approx(sec(50.0))
        assert delta_p2_seconds(300.0, 100.0, 0.0) == pytest.approx(sec(50.0))

    def test_p2_can_go_negative(self):
        assert delta_p2_seconds(100.0, 100.0, 1.0) < 0


def mk_graph(**traits):
    """Two-kernel chain with configurable streaming traits."""
    ks = {
        "p": KernelSpec(
            "p", 10_000.0, 80_000.0,
            streams_host_io=traits.get("p_host", False),
        ),
        "c": KernelSpec(
            "c", 20_000.0, 160_000.0,
            streams_host_io=traits.get("c_host", False),
            streams_kernel_input=traits.get("c_stream", False),
        ),
    }
    return CommGraph(
        kernels=ks,
        kk_edges={("p", "c"): 50_000},
        host_in={"p": 100_000},
        host_out={"c": 100_000},
    )


class TestFindOpportunities:
    def test_case1_applied_when_capable_and_positive(self):
        g = mk_graph(p_host=True)
        decisions = find_pipeline_opportunities(g, (("p", "c"),), THETA, 0.0)
        case1_p = [
            d for d in decisions
            if d.case is PipelineCase.HOST_STREAM and d.kernel == "p"
        ]
        assert len(case1_p) == 1
        assert case1_p[0].applied

    def test_case1_rejected_without_capability(self):
        g = mk_graph(p_host=False)
        decisions = find_pipeline_opportunities(g, (("p", "c"),), THETA, 0.0)
        d = next(
            d for d in decisions
            if d.case is PipelineCase.HOST_STREAM and d.kernel == "p"
        )
        assert not d.applied
        assert "cannot stream" in d.reason

    def test_case1_skipped_with_no_host_traffic(self):
        ks = {
            "p": KernelSpec("p", 10.0, 10.0, streams_host_io=True),
            "c": KernelSpec("c", 10.0, 10.0),
        }
        g = CommGraph(kernels=ks, kk_edges={("p", "c"): 10})
        decisions = find_pipeline_opportunities(g, (), THETA, 0.0)
        assert all(d.case is not PipelineCase.HOST_STREAM for d in decisions)

    def test_case2_applied_on_kept_edge(self):
        g = mk_graph(c_stream=True)
        decisions = find_pipeline_opportunities(g, (("p", "c"),), THETA, 0.0)
        d = next(d for d in decisions if d.case is PipelineCase.KERNEL_STREAM)
        assert d.applied
        assert (d.kernel, d.consumer) == ("p", "c")
        assert d.delta_seconds == pytest.approx(sec(5000.0))

    def test_case2_not_evaluated_on_unkept_edges(self):
        g = mk_graph(c_stream=True)
        decisions = find_pipeline_opportunities(g, (), THETA, 0.0)
        assert all(d.case is not PipelineCase.KERNEL_STREAM for d in decisions)

    def test_case2_rejected_when_consumer_cannot_stream(self):
        g = mk_graph(c_stream=False)
        decisions = find_pipeline_opportunities(g, (("p", "c"),), THETA, 0.0)
        d = next(d for d in decisions if d.case is PipelineCase.KERNEL_STREAM)
        assert not d.applied

    def test_overhead_kills_marginal_gains(self):
        g = mk_graph(p_host=True, c_stream=True)
        decisions = find_pipeline_opportunities(g, (("p", "c"),), THETA, 1.0)
        assert all(not d.applied for d in decisions)

    def test_total_gain_sums_applied_only(self):
        g = mk_graph(p_host=True, c_stream=True)
        decisions = find_pipeline_opportunities(g, (("p", "c"),), THETA, 0.0)
        total = total_pipeline_gain(decisions)
        assert total == pytest.approx(
            sum(d.delta_seconds for d in decisions if d.applied)
        )
        assert total > 0
