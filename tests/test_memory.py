"""Tests for the tracked address space and buffers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AddressSpaceError
from repro.profiling import AddressSpace, Tracer


@pytest.fixture()
def space():
    return AddressSpace(Tracer())


class TestAllocation:
    def test_alloc_zero_initialised(self, space):
        buf = space.alloc("a", (4, 4), np.float32)
        assert buf.data.shape == (4, 4)
        assert np.all(buf.data == 0)

    def test_duplicate_name_rejected(self, space):
        space.alloc("a", (4,))
        with pytest.raises(AddressSpaceError):
            space.alloc("a", (8,))

    def test_buffers_do_not_overlap(self, space):
        bufs = [space.alloc(f"b{i}", (17,), np.uint8) for i in range(5)]
        ranges = sorted((b.base, b.base + b.nbytes) for b in bufs)
        for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
            assert hi1 <= lo2

    def test_alignment(self):
        space = AddressSpace(Tracer(), align=64)
        a = space.alloc("a", (3,), np.uint8)
        b = space.alloc("b", (3,), np.uint8)
        assert a.base % 64 == 0
        assert b.base % 64 == 0

    def test_bad_alignment_rejected(self):
        with pytest.raises(AddressSpaceError):
            AddressSpace(Tracer(), align=48)

    def test_alloc_like_copies_without_tracing(self):
        tracer = Tracer()
        space = AddressSpace(tracer)
        src = np.arange(6, dtype=np.int16)
        buf = space.alloc_like("a", src)
        assert np.array_equal(buf.data, src)
        assert tracer.edges() == {}

    def test_get_and_owner_of(self, space):
        buf = space.alloc("a", (8,), np.uint8)
        assert space.get("a") is buf
        assert space.owner_of(buf.base + 3) is buf
        assert space.owner_of(10**9) is None
        with pytest.raises(AddressSpaceError):
            space.get("missing")


class TestTracedAccess:
    def test_store_then_load_moves_data(self, space):
        buf = space.alloc("a", (10,), np.float64)
        buf.store(np.arange(10.0))
        out = buf.load()
        assert np.array_equal(out, np.arange(10.0))

    def test_load_view_is_readonly(self, space):
        buf = space.alloc("a", (4,), np.float64)
        view = buf.load()
        with pytest.raises(ValueError):
            view[0] = 1.0

    def test_partial_store_and_load(self, space):
        buf = space.alloc("a", (10,), np.int32)
        buf.store(np.array([7, 8]), start=4)
        assert list(buf.load(4, 2)) == [7, 8]

    def test_out_of_range_rejected(self, space):
        buf = space.alloc("a", (10,), np.int32)
        with pytest.raises(AddressSpaceError):
            buf.load(8, 5)
        with pytest.raises(AddressSpaceError):
            buf.store(np.zeros(4), start=8)

    def test_store_full_shape_mismatch_rejected(self, space):
        buf = space.alloc("a", (4, 4))
        with pytest.raises(AddressSpaceError):
            buf.store_full(np.zeros((3, 3)))

    def test_address_range_uses_itemsize(self, space):
        buf = space.alloc("a", (10,), np.int32)
        lo, hi = buf.address_range(2, 3)
        assert lo == buf.base + 8
        assert hi == buf.base + 20

    def test_tracer_sees_byte_intervals(self):
        tracer = Tracer()
        space = AddressSpace(tracer)
        a = space.alloc("a", (8,), np.float64)  # 64 bytes
        with tracer.context("writer"):
            a.store_full(np.ones(8))
        with tracer.context("reader"):
            a.load_full()
        assert tracer.edge_bytes("writer", "reader") == 64
        assert tracer.edge_umas("writer", "reader") == 64

    def test_cross_buffer_attribution_separate(self):
        tracer = Tracer()
        space = AddressSpace(tracer)
        a = space.alloc("a", (4,), np.uint8)
        b = space.alloc("b", (4,), np.uint8)
        with tracer.context("w"):
            a.store_full(np.ones(4, dtype=np.uint8))
        with tracer.context("r"):
            b.load_full()  # untouched buffer -> entry-produced
        assert tracer.edge_bytes("w", "r") == 0
        assert tracer.edge_bytes(Tracer.ENTRY, "r") == 4

    def test_load_full_preserves_shape(self, space):
        buf = space.alloc("a", (3, 5), np.float32)
        assert buf.load_full().shape == (3, 5)

    def test_bytes_allocated_monotonic(self, space):
        before = space.bytes_allocated
        space.alloc("a", (100,), np.float64)
        assert space.bytes_allocated >= before + 800
