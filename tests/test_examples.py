"""Smoke tests: every example script must run to completion.

Examples are documentation that executes; these tests keep them green.
Each runs in a temporary working directory (some write artifacts) with
argv pinned, and key output markers are asserted so a silently broken
example cannot pass.
"""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, monkeypatch, tmp_path, capsys, argv=()):
    monkeypatch.chdir(tmp_path)
    monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart_default(self, monkeypatch, tmp_path, capsys):
        out = run_example("quickstart.py", monkeypatch, tmp_path, capsys)
        assert "designed interconnect for 'jpeg'" in out
        assert "speed-up vs baseline" in out

    def test_quickstart_other_app(self, monkeypatch, tmp_path, capsys):
        out = run_example(
            "quickstart.py", monkeypatch, tmp_path, capsys, argv=["klt"]
        )
        assert "designed interconnect for 'klt'" in out

    def test_jpeg_walkthrough(self, monkeypatch, tmp_path, capsys):
        out = run_example("jpeg_walkthrough.py", monkeypatch, tmp_path, capsys)
        assert "hotspot ranking" in out
        assert "adaptive mapping" in out
        assert "paper: 3.08x / 2.87x" in out

    def test_custom_application(self, monkeypatch, tmp_path, capsys):
        out = run_example(
            "custom_application.py", monkeypatch, tmp_path, capsys
        )
        assert "Interconnect plan for 'sdr'" in out
        assert "simulated:" in out

    def test_design_space_sweep(self, monkeypatch, tmp_path, capsys):
        out = run_example(
            "design_space_sweep.py", monkeypatch, tmp_path, capsys
        )
        assert "bus cost sweep" in out
        assert "streaming overhead sweep" in out

    def test_runtime_reconfiguration(self, monkeypatch, tmp_path, capsys):
        out = run_example(
            "runtime_reconfiguration.py", monkeypatch, tmp_path, capsys
        )
        assert "=> best: static_all" in out
        assert "=> best: hybrid_pinned" in out

    def test_hls_design(self, monkeypatch, tmp_path, capsys):
        out = run_example("hls_design.py", monkeypatch, tmp_path, capsys)
        assert "HLS estimates:" in out
        assert "disparity_search" in out
        assert "simulated vs baseline" in out

    def test_parameter_sweep(self, monkeypatch, tmp_path, capsys):
        out = run_example("parameter_sweep.py", monkeypatch, tmp_path, capsys)
        assert (tmp_path / "sweep_results.csv").exists()
        assert "static NoC channel-load analysis" in out

    def test_what_if(self, monkeypatch, tmp_path, capsys):
        out = run_example("what_if.py", monkeypatch, tmp_path, capsys)
        assert "sensitivity" in out
        assert "bus 8x faster" in out
