"""Fault-injection tests: exceptions inside simulated processes.

The component models guard their resources with try/finally; these
tests verify a crashing process neither corrupts resource state nor
silently disappears.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.bus import PlbBus
from repro.sim.engine import Engine, Resource
from repro.sim.memory import Bram


class Boom(RuntimeError):
    pass


class TestProcessExceptions:
    def test_exception_propagates_from_run(self):
        eng = Engine()

        def proc():
            yield 1.0
            raise Boom("mid-simulation")

        eng.process(proc())
        with pytest.raises(Boom):
            eng.run()

    def test_exception_before_first_yield(self):
        eng = Engine()

        def proc():
            raise Boom("immediately")
            yield  # pragma: no cover

        eng.process(proc())
        with pytest.raises(Boom):
            eng.run()

    def test_resource_released_via_finally_pattern(self):
        eng = Engine()
        res = Resource(eng)

        def crasher():
            yield res.request()
            try:
                yield 1.0
                raise Boom()
            finally:
                res.release()

        def survivor():
            yield res.request()
            res.release()
            return "done"

        eng.process(crasher())
        p = eng.process(survivor())
        with pytest.raises(Boom):
            eng.run()
        # Drain the rest of the queue: the survivor still completes.
        eng.run()
        assert p.triggered
        assert p.value == "done"

    def test_bus_transfer_releases_on_component_error(self):
        """A failing BRAM access mid-schedule must not wedge the bus."""
        eng = Engine()
        bus = PlbBus(eng)
        mem = Bram(eng, "m", size_bytes=64)

        def bad():
            yield from bus.transfer(128, requester="bad")
            # Oversized access raises inside the generator.
            yield from mem.access(1000, accessor="bad")

        def good():
            yield from bus.transfer(128, requester="good")
            return "ok"

        eng.process(bad())
        p = eng.process(good())
        with pytest.raises(ConfigurationError):
            eng.run()
        eng.run()
        assert p.value == "ok"
        assert bus._resource._in_use == 0


class TestHlsKernelIrs:
    def test_all_apps_have_irs_matching_kernel_names(self, fitted_apps):
        from repro.hls.kernels import kernel_irs_for

        for name, fitted in fitted_apps.items():
            irs = kernel_irs_for(name)
            originals = {
                k.split("#")[0] for k in fitted.graph.kernel_names()
            }
            assert set(irs) == originals, name

    def test_unknown_app_rejected(self):
        from repro.hls.kernels import kernel_irs_for

        with pytest.raises(ConfigurationError):
            kernel_irs_for("doom3")

    def test_estimates_are_positive_and_finite(self):
        from repro.hls import estimate_kernel
        from repro.hls.kernels import APP_KERNEL_IRS

        for factory in APP_KERNEL_IRS.values():
            for ir in factory():
                est = estimate_kernel(ir)
                assert est.tau_cycles > 0
                assert est.sw_cycles > 0
                assert est.resources.luts > 0

    def test_jpeg_ac_is_hottest_ir(self):
        from repro.hls import estimate_kernel
        from repro.hls.kernels import kernel_irs_for

        ests = {
            name: estimate_kernel(ir).tau_cycles
            for name, ir in kernel_irs_for("jpeg").items()
        }
        assert max(ests, key=ests.get) == "huff_ac_dec"
