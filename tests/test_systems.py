"""Tests for the simulated system variants (software/baseline/proposed)."""

from __future__ import annotations

import pytest

from repro.core import CommGraph, DesignConfig, KernelSpec, design_interconnect
from repro.core.analytic import AnalyticModel
from repro.hw.resources import ResourceCost
from repro.sim import (
    SystemParams,
    simulate_baseline,
    simulate_proposed,
    simulate_software,
)

PARAMS = SystemParams()
THETA = PARAMS.theta_s_per_byte()


def chain_graph(kk=40_000, streams=False):
    ks = {
        "p": KernelSpec(
            "p", 100_000.0, 1_600_000.0,
            streams_host_io=streams,
            resources=ResourceCost(100, 100),
        ),
        "c": KernelSpec(
            "c", 50_000.0, 900_000.0,
            streams_kernel_input=streams,
            resources=ResourceCost(100, 100),
        ),
    }
    return CommGraph(
        kernels=ks,
        kk_edges={("p", "c"): kk},
        host_in={"p": 30_000},
        host_out={"c": 20_000},
    )


def design(g, **kw):
    cfg = DesignConfig(theta_s_per_byte=THETA, stream_overhead_s=10e-6, **kw)
    return design_interconnect("t", g, cfg)


class TestSoftware:
    def test_additive(self):
        g = chain_graph()
        t = simulate_software(g, host_other_s=0.25)
        assert t.kernels_s == pytest.approx(
            sum(g.kernel(k).sw_seconds for k in g.kernel_names())
        )
        assert t.application_s == pytest.approx(t.kernels_s + 0.25)
        assert t.communication_s == 0.0


class TestBaseline:
    def test_close_to_analytic(self):
        g = chain_graph()
        sim = simulate_baseline(g, 0.0, PARAMS)
        model = AnalyticModel(g, THETA, 0.0).baseline()
        # Transaction overheads make the simulator slightly slower, but
        # within a few percent on bulk transfers.
        assert sim.kernels_s == pytest.approx(model.kernels_s, rel=0.05)

    def test_sequential_execution(self):
        """Baseline makespan is at least computation + communication."""
        g = chain_graph()
        sim = simulate_baseline(g, 0.0, PARAMS)
        comp = sum(g.kernel(k).tau_seconds for k in g.kernel_names())
        assert sim.kernels_s >= comp
        assert sim.bus_busy_s > 0

    def test_host_other_added(self):
        g = chain_graph()
        a = simulate_baseline(g, 0.0, PARAMS)
        b = simulate_baseline(g, 1.0, PARAMS)
        assert b.application_s == pytest.approx(a.application_s + 1.0)


class TestProposed:
    def test_faster_than_baseline(self):
        g = chain_graph()
        plan = design(g)
        base = simulate_baseline(g, 0.0, PARAMS)
        prop = simulate_proposed(plan, 0.0, PARAMS)
        assert prop.kernels_s < base.kernels_s

    def test_sm_edge_moves_no_bus_bytes(self):
        """Shared-memory traffic must not appear on the bus."""
        g = chain_graph()
        plan = design(g)
        assert len(plan.sharing) == 1
        prop = simulate_proposed(plan, 0.0, PARAMS)
        # Bus moved only host traffic (30k in + 20k out), not the 40k edge.
        host_bytes = 30_000 + 20_000
        approx_bus_time = host_bytes * THETA
        assert prop.bus_busy_s < 1.5 * approx_bus_time

    def test_noc_carries_residual_traffic(self):
        g = chain_graph()
        plan = design(g, enable_sharing=False)
        prop = simulate_proposed(plan, 0.0, PARAMS)
        assert prop.noc_bytes == 40_000

    def test_matches_analytic_within_tolerance(self):
        g = chain_graph()
        plan = design(g)
        model = AnalyticModel(g, THETA, 0.0)
        sim = simulate_proposed(plan, 0.0, PARAMS)
        # The analytic model hides NoC time fully and ignores transaction
        # overheads; agreement within ~25% is the expected envelope.
        assert sim.kernels_s == pytest.approx(
            model.proposed(plan).kernels_s, rel=0.25
        )

    def test_streaming_overlap_reduces_makespan(self):
        g_plain = chain_graph(streams=False)
        g_stream = chain_graph(streams=True)
        t_plain = simulate_proposed(design(g_plain), 0.0, PARAMS)
        t_stream = simulate_proposed(design(g_stream), 0.0, PARAMS)
        assert t_stream.kernels_s < t_plain.kernels_s

    def test_duplication_runs_concurrently(self):
        ks = {
            "hot": KernelSpec(
                "hot", 500_000.0, 8_000_000.0,
                parallelizable=True, resources=ResourceCost(10, 10),
            ),
        }
        g = CommGraph(kernels=ks, host_in={"hot": 1_000}, host_out={"hot": 1_000})
        plan = design(g)
        assert any(d.applied for d in plan.duplications)
        prop = simulate_proposed(plan, 0.0, PARAMS)
        tau_full = KernelSpec("x", 500_000.0, 0.0).tau_seconds
        # Two halves in parallel: makespan well under the full tau.
        assert prop.kernels_s < 0.75 * tau_full

    def test_cyclic_graph_terminates(self):
        """Feedback edges (fluid-style) must not deadlock the simulator."""
        ks = {n: KernelSpec(n, 10_000.0, 100_000.0) for n in ("a", "b", "c")}
        g = CommGraph(
            kernels=ks,
            kk_edges={
                ("a", "b"): 1000, ("b", "c"): 1000,
                ("c", "a"): 1000, ("b", "a"): 500,
            },
            host_in={"a": 500},
            host_out={"c": 500},
        )
        plan = design(g)
        prop = simulate_proposed(plan, 0.0, PARAMS)
        assert prop.kernels_s > 0

    def test_relay_edges_when_noc_disabled(self):
        """Without NoC and SM, kernel edges relay through the host bus."""
        g = chain_graph()
        plan = design(g, enable_sharing=False, enable_noc=False)
        prop = simulate_proposed(plan, 0.0, PARAMS)
        base = simulate_baseline(g, 0.0, PARAMS)
        # Relaying costs two bus trips, same as the baseline model; the
        # proposed run may still pipeline, so it is at most baseline-ish.
        assert prop.bus_busy_s >= base.bus_busy_s * 0.9
        assert prop.noc_bytes == 0

    def test_speedup_over_helper(self):
        g = chain_graph()
        base = simulate_baseline(g, 0.1, PARAMS)
        prop = simulate_proposed(design(g), 0.1, PARAMS)
        app, kern = prop.speedup_over(base)
        assert app > 1.0
        assert kern > 1.0
