"""Tests for the end-to-end flow and report rendering."""

from __future__ import annotations

import pytest

from repro.flow import run_experiment
from repro.reporting import (
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    render_fig9,
    render_simulation_crosscheck,
    render_table2,
    render_table3,
    render_table4,
)


class TestRunExperiment:
    def test_skipping_simulation(self):
        r = run_experiment("klt", simulate=False)
        assert r.sim_baseline is None
        assert r.sim_proposed is None
        assert r.analytic_baseline.kernels_s > 0

    def test_result_is_self_consistent(self, jpeg_result):
        r = jpeg_result
        # Speed-up accessors agree with the stored timings.
        assert r.proposed_vs_baseline.kernels == pytest.approx(
            r.analytic_baseline.kernels_s / r.analytic_proposed.kernels_s
        )
        # Energy report used the same times.
        assert r.energy.baseline_energy_j / r.energy.baseline_power_w == (
            pytest.approx(r.analytic_baseline.application_s)
        )

    def test_noc_only_plan_differs(self, jpeg_result):
        assert jpeg_result.noc_only_plan.sharing == ()
        assert jpeg_result.noc_only_plan.noc.router_count > (
            jpeg_result.plan.noc.router_count
        )

    def test_deterministic_across_runs(self):
        r1 = run_experiment("klt", simulate=False)
        r2 = run_experiment("klt", simulate=False)
        assert r1.analytic_proposed.kernels_s == r2.analytic_proposed.kernels_s
        assert r1.synth_proposed.total == r2.synth_proposed.total


class TestRendering:
    def test_fig4_mentions_all_apps_and_average(self, all_results):
        text = render_fig4(all_results)
        for name in ("canny", "jpeg", "klt", "fluid", "average"):
            assert name in text

    def test_table2_contains_paper_rows(self):
        text = render_table2()
        assert "1048/188" in text  # bus
        assert "309/353" in text  # router
        assert "345.8MHz" in text
        assert "N/A" in text  # crossbar fmax

    def test_fig5_shows_jpeg_kernels(self, jpeg_result):
        text = render_fig5(jpeg_result)
        for fn in ("huff_dc_dec", "huff_ac_dec", "dquantz_lum", "j_rev_dct"):
            assert fn in text
        assert "host" in text

    def test_fig6_describes_plan(self, jpeg_result):
        text = render_fig6(jpeg_result)
        assert "duplicated kernels : huff_ac_dec" in text
        assert "dquantz_lum -> j_rev_dct" in text

    def test_table3_and_fig7_identical(self, all_results):
        assert render_table3(all_results) == render_fig7(all_results)

    def test_table4_has_solution_column(self, all_results):
        text = render_table4(all_results)
        assert "NoC, SM, P" in text
        assert "SM" in text

    def test_fig8_and_fig9_render(self, all_results):
        assert "interconnect/kernels" in render_fig8(all_results)
        assert "normalized energy" in render_fig9(all_results)

    def test_crosscheck_renders_all_apps(self, all_results):
        text = render_simulation_crosscheck(all_results)
        for name in all_results:
            assert name in text
