"""Setuptools shim so legacy editable installs work offline."""
from setuptools import setup

setup()
