#!/usr/bin/env python
"""The paper's Section V-B walkthrough, step by step.

Reproduces the JPEG decoder narrative: select the HW kernels, duplicate
the hottest one, profile the data communication (Fig. 5), apply the
shared-local-memory solution, map the rest onto the NoC with the
adaptive mapping function (Fig. 6), and evaluate the result.

Every stage of Algorithm 1 is invoked *explicitly* here — read this
example to understand what :func:`repro.core.design_interconnect` does
internally.
"""

from repro.apps import fit_application, get_application
from repro.core.analytic import AnalyticModel
from repro.core.designer import DesignConfig, InterconnectDesigner
from repro.core.duplication import decide_duplications
from repro.core.mapping import adaptive_map
from repro.core.sharing import find_sharing_pairs, residual_graph
from repro.core.topology import classify_receive, classify_send
from repro.hw.device import XC5VFX130T
from repro.hw.resources import ResourceCost
from repro.profiling import rank_functions, render_profile_graph
from repro.sim.systems import SystemParams


def main() -> None:
    params = SystemParams()
    theta = params.theta_s_per_byte()

    # ---- Line 1: the most computationally intensive functions --------
    app = get_application("jpeg")
    profile = app.profile()
    report = rank_functions(profile, exclude=["bitstream_parse", "display"])
    print("hotspot ranking (work share):")
    for name, _work, share in report.ranking:
        print(f"  {name:<16} {share:6.1%}")
    print(f"L_hw = {list(app.kernel_names())}\n")

    # ---- Line 7: quantitative data communication profiling (Fig. 5) --
    fitted = fit_application(app, theta)
    graph = fitted.graph
    folded = profile.restricted_to(app.kernel_names(), "host")
    print("data communication profile (Fig. 5):")
    print(render_profile_graph(folded))
    print()

    # ---- Lines 2-6: duplication -----------------------------------------
    committed = ResourceCost(3248, 2988)  # platform base + PLB bus
    for k in graph.kernel_names():
        committed = committed + graph.kernel(k).resources
    dup_graph, decisions = decide_duplications(
        graph, XC5VFX130T, fitted.stream_overhead_s, committed
    )
    for d in decisions:
        mark = "DUPLICATED" if d.applied else f"kept ({d.reason})"
        print(f"  {d.kernel:<16} delta_dp={d.delta_dp_seconds * 1e6:8.1f}us  {mark}")
    print()

    # ---- Lines 8-13: shared local memory ---------------------------------
    links = find_sharing_pairs(dup_graph)
    for link in links:
        style = "through the 2x2 crossbar" if link.crossbar else "directly"
        print(
            f"shared local memory: {link.producer} -> {link.consumer} "
            f"({link.bytes} B), {style}"
        )
    residual = residual_graph(dup_graph, links)

    # ---- Line 14: adaptive mapping (Table I) ------------------------------
    print("\nadaptive mapping on the residual graph:")
    for name in dup_graph.kernel_names():
        r = classify_receive(residual, name)
        s = classify_send(residual, name)
        k, m = adaptive_map(r, s)
        print(f"  {name:<16} {{{r.name},{s.name}}} -> {{{k.name},{m.name}}}")

    # ---- The full designer, for comparison (Fig. 6) -----------------------
    config = DesignConfig(
        theta_s_per_byte=theta, stream_overhead_s=fitted.stream_overhead_s
    )
    plan = InterconnectDesigner("jpeg", graph, config).design()
    print("\nfull designer output (Fig. 6):")
    print(plan.describe())

    # ---- Evaluation --------------------------------------------------------
    model = AnalyticModel(graph, theta, fitted.host_other_s)
    base = model.proposed_vs_baseline(plan)
    print(
        f"\nresult: {base.kernels:.2f}x kernels / {base.application:.2f}x "
        f"application over the bus-only baseline "
        f"(paper: 3.08x / 2.87x)"
    )


if __name__ == "__main__":
    main()
