#!/usr/bin/env python
"""Bring your own application: design an interconnect for new code.

This example defines a small software-defined-radio pipeline from
scratch (channelize → demodulate → decode), runs it under the QUAD-style
profiler, supplies explicit calibration targets (you would measure these
on your own platform), and designs its custom interconnect — the exact
workflow a user follows for an application the library does not ship.
"""

from typing import Dict

import numpy as np

from repro.apps.base import Application, KernelTraits
from repro.apps.calibration import CalibrationTargets, fit_application
from repro.core.analytic import AnalyticModel
from repro.core.designer import DesignConfig, design_interconnect
from repro.profiling import AddressSpace, Tracer
from repro.sim.systems import SystemParams, simulate_baseline, simulate_proposed


class SdrPipeline(Application):
    """Channelizer → FM demodulator → symbol decoder over synthetic IQ."""

    name = "sdr"

    def __init__(self, scale: int = 1, seed: int = 7) -> None:
        super().__init__(scale=scale, seed=seed)
        self.n_samples = 16_384 * scale

    def kernel_traits(self) -> Dict[str, KernelTraits]:
        return {
            "channelize": KernelTraits(streams_host_io=True),
            "demodulate": KernelTraits(streams_kernel_input=True),
            "decode": KernelTraits(streams_kernel_input=True),
        }

    def execute(self, tracer: Tracer, space: AddressSpace) -> None:
        n = self.n_samples
        iq = space.alloc("iq", (n, 2), np.float32)
        band = space.alloc("band", (n,), np.complex64)
        audio = space.alloc("audio", (n,), np.float32)
        symbols = space.alloc("symbols", (n // 16,), np.uint8)

        with tracer.context("rf_frontend"):
            t = np.arange(n) / n
            carrier = np.exp(2j * np.pi * 40 * t)
            message = np.sin(2 * np.pi * 3 * t)
            signal = carrier * np.exp(1j * 200.0 * np.cumsum(message) / n * 2 * np.pi)
            signal += 0.005 * (
                self.rng.standard_normal(n) + 1j * self.rng.standard_normal(n)
            )
            iq.store_full(np.stack([signal.real, signal.imag], axis=1))

        with tracer.context("channelize"):
            raw = iq.load_full()
            z = (raw[:, 0] + 1j * raw[:, 1]).astype(np.complex64)
            t = np.arange(n) / n
            band.store_full(z * np.exp(-2j * np.pi * 40 * t))  # mix to baseband
            tracer.add_work(6.0 * n)

        with tracer.context("demodulate"):
            z = band.load_full()
            phase = np.unwrap(np.angle(z))
            audio.store_full(np.diff(phase, prepend=phase[0]).astype(np.float32))
            tracer.add_work(10.0 * n)

        with tracer.context("decode"):
            a = audio.load_full()
            frames = a[: (n // 16) * 16].reshape(-1, 16)
            symbols.store_full((frames.mean(axis=1) > 0).astype(np.uint8))
            tracer.add_work(4.0 * n)

        with tracer.context("sink"):
            symbols.load_full()

    def verify(self, space: AddressSpace) -> None:
        symbols = space.get("symbols").data
        # The 3 Hz message must flip the symbol stream a handful of times.
        flips = int(np.abs(np.diff(symbols.astype(int))).sum())
        if not 2 <= flips <= 64:
            raise AssertionError(f"implausible symbol stream ({flips} flips)")


def main() -> None:
    params = SystemParams()
    theta = params.theta_s_per_byte()

    # Calibration you would measure on your own board: how comm-bound the
    # bus-based version is, and how it compares to pure software.
    targets = CalibrationTargets(
        app="sdr",
        comm_comp_ratio=1.8,
        baseline_app_speedup=1.9,
        baseline_kernel_speedup=2.4,
        baseline_luts=9000,
        baseline_regs=9500,
        overhead_fraction=0.05,
    )

    app = SdrPipeline()
    fitted = fit_application(app, theta, targets)
    config = DesignConfig(
        theta_s_per_byte=theta, stream_overhead_s=fitted.stream_overhead_s
    )
    plan = design_interconnect("sdr", fitted.graph, config)
    print(plan.describe())

    model = AnalyticModel(fitted.graph, theta, fitted.host_other_s)
    pair = model.proposed_vs_baseline(plan)
    print(f"\nanalytic: {pair.kernels:.2f}x kernels / "
          f"{pair.application:.2f}x application vs baseline")

    base = simulate_baseline(fitted.graph, fitted.host_other_s, params)
    prop = simulate_proposed(plan, fitted.host_other_s, params)
    app_s, kern_s = prop.speedup_over(base)
    print(f"simulated: {kern_s:.2f}x kernels / {app_s:.2f}x application")


if __name__ == "__main__":
    main()
