#!/usr/bin/env python
"""What-if analysis: where should optimization effort go?

Loads the calibrated JPEG system and asks the questions an architect
iterating on it would ask — which kernel is worth accelerating further,
what happens if the bitstream grows, when does a faster bus make the
custom interconnect pointless, and what breaks if a kernel falls out of
the hardware set.
"""

from repro.apps import fit_application, get_application
from repro.core import DesignConfig, WhatIf
from repro.sim.systems import SystemParams


def main() -> None:
    theta = SystemParams().theta_s_per_byte()
    fitted = fit_application(get_application("jpeg"), theta)
    w = WhatIf(
        "jpeg",
        fitted.graph,
        DesignConfig(theta_s_per_byte=theta,
                     stream_overhead_s=fitted.stream_overhead_s),
        host_other_s=fitted.host_other_s,
    )
    print(f"reference: {w.reference_seconds * 1e6:.1f} us kernels, "
          f"solution {w.reference_plan.solution_label()}\n")

    print("sensitivity (each kernel 2x faster -> relative time):")
    for name, rel in sorted(w.sensitivity(2.0).items(), key=lambda kv: kv[1]):
        print(f"  {name:<16} {rel:6.3f}")

    print("\nscenarios:")
    for outcome in [
        w.kernel_speed("huff_ac_dec", 4.0),
        w.edge_volume("dquantz_lum", "j_rev_dct", 2.0),
        w.bus_speed(8.0),
        w.drop_kernel("j_rev_dct"),
    ]:
        flag = (
            f"  [solution {outcome.reference_solution} -> {outcome.new_solution}]"
            if outcome.solution_changed else ""
        )
        print(
            f"  {outcome.description:<32} time x{outcome.relative_time:5.2f}  "
            f"speedup vs baseline {outcome.speedup_vs_baseline:4.2f}x{flag}"
        )


if __name__ == "__main__":
    main()
