#!/usr/bin/env python
"""Quickstart: design a custom interconnect for one application.

Runs the complete flow for the paper's JPEG decoder — profile the
instrumented application, run the design algorithm, and compare the
designed system against software and the bus-only baseline — in a dozen
lines of user code.

Usage::

    python examples/quickstart.py [app]

where ``app`` is one of: canny, jpeg, klt, fluid (default jpeg).
"""

import sys

from repro import run_experiment


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "jpeg"
    result = run_experiment(app)

    print(f"--- designed interconnect for {app!r} ---")
    print(result.plan.describe())

    sw = result.proposed_vs_sw
    base = result.proposed_vs_baseline
    print(f"\nspeed-up vs software : {sw.application:.2f}x application, "
          f"{sw.kernels:.2f}x kernels")
    print(f"speed-up vs baseline : {base.application:.2f}x application, "
          f"{base.kernels:.2f}x kernels")

    ours = result.synth_proposed.total
    noc = result.synth_noc_only.total
    print(f"\nresources (ours)     : {ours.luts} LUTs / {ours.regs} registers")
    print(f"resources (NoC-only) : {noc.luts} LUTs / {noc.regs} registers")
    print(f"energy saving        : {result.energy.saving_percent:.1f}%")

    if result.sim_proposed is not None and result.sim_baseline is not None:
        app_s, kern_s = result.sim_proposed.speedup_over(result.sim_baseline)
        print(f"\nsimulated (with contention): {app_s:.2f}x application, "
              f"{kern_s:.2f}x kernels vs baseline")


if __name__ == "__main__":
    main()
