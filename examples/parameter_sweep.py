#!/usr/bin/env python
"""Grid sweeps with CSV export.

Runs the full flow over a small parameter grid (all four applications ×
bus widths × NoC transports) and exports the flat records to
``sweep_results.csv`` — the starting point for any "how sensitive is
the result to X?" study. Also demonstrates the static NoC channel-load
analysis on each designed plan.
"""

from repro.apps.registry import APP_NAMES
from repro.sim.noc.analysis import analyze_noc_load
from repro.sweep import SweepGrid, run_sweep, to_csv


def main() -> None:
    grid = SweepGrid(
        apps=APP_NAMES,
        param_grid={
            "bus_width_bytes": [4, 8],
            "noc_transport": ["store_forward", "wormhole"],
        },
        simulate=True,
    )
    print(f"evaluating {grid.size()} grid points ...")
    points = run_sweep(grid)

    csv_text = to_csv(points, "sweep_results.csv")
    print(f"wrote sweep_results.csv ({len(csv_text.splitlines()) - 1} rows)\n")

    header = (
        f"{'app':<7}{'bus':>4}{'transport':>15}{'speedup':>9}"
        f"{'sim':>7}{'LUTs':>7}"
    )
    print(header)
    for p in points:
        rec = p.record()
        print(
            f"{rec['app']:<7}{rec['bus_width_bytes']:>4}"
            f"{rec['noc_transport']:>15}"
            f"{rec['speedup_kernels']:>8.2f}x"
            f"{rec.get('sim_speedup_kernels', float('nan')):>6.2f}x"
            f"{rec['proposed_luts']:>7}"
        )

    print("\nstatic NoC channel-load analysis (8-byte bus points):")
    for p in points:
        if p.params.bus_width_bytes != 8:
            continue
        if p.params.noc_transport != "store_forward":
            continue
        report = analyze_noc_load(p.result.plan)
        if report is None:
            print(f"  {p.app:<7} no NoC (shared memory only)")
            continue
        print(
            f"  {p.app:<7} max channel load {report.max_channel_load:>7} B, "
            f"avg hops {report.average_hops:.2f}, "
            f"balance {report.load_balance:.2f}"
        )


if __name__ == "__main__":
    main()
