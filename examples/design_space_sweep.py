#!/usr/bin/env python
"""Design-space exploration with the analytic model and the simulator.

Three sweeps over the JPEG system:

1. bus speed (θ) — when does the custom interconnect stop paying off?
2. NoC link width — how sensitive is the simulated makespan to NoC
   bandwidth?
3. streaming overhead ``O`` — when do the pipelining cases switch off?

Run time is a few seconds; all sweeps print aligned tables.
"""

from dataclasses import replace

from repro.core.analytic import AnalyticModel
from repro.core.designer import DesignConfig, design_interconnect
from repro.core.parallel import PipelineCase
from repro.flow import run_experiment
from repro.sim.systems import SystemParams, simulate_proposed


def sweep_theta(fitted) -> None:
    print("bus cost sweep (theta multiplier vs speed-up over baseline):")
    for mult in (0.01, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0):
        theta = fitted.theta_s_per_byte * mult
        config = DesignConfig(
            theta_s_per_byte=theta, stream_overhead_s=fitted.stream_overhead_s
        )
        plan = design_interconnect("jpeg", fitted.graph, config)
        model = AnalyticModel(fitted.graph, theta, fitted.host_other_s)
        s = model.proposed_vs_baseline(plan).kernels
        print(f"  theta x{mult:<5}  ->  {s:5.2f}x  ({plan.solution_label()})")
    print()


def sweep_noc_width(result) -> None:
    print("NoC link width sweep (simulated kernel makespan):")
    for width in (1, 2, 4, 8, 16):
        params = SystemParams(noc_link_width_bytes=width)
        sim = simulate_proposed(result.plan, result.fitted.host_other_s, params)
        print(f"  {width:>2} B/cycle  ->  {sim.kernels_s * 1e3:7.3f} ms")
    print()


def sweep_overhead(fitted) -> None:
    print("streaming overhead sweep (applied pipelining decisions):")
    for frac in (0.0, 0.05, 0.1, 0.2, 0.4, 0.8):
        overhead = frac * sum(
            fitted.graph.kernel(k).tau_seconds
            for k in fitted.graph.kernel_names()
        )
        config = DesignConfig(
            theta_s_per_byte=fitted.theta_s_per_byte,
            stream_overhead_s=overhead,
        )
        plan = design_interconnect("jpeg", fitted.graph, config)
        case1 = sum(
            1 for d in plan.pipeline
            if d.applied and d.case is PipelineCase.HOST_STREAM
        )
        case2 = sum(
            1 for d in plan.pipeline
            if d.applied and d.case is PipelineCase.KERNEL_STREAM
        )
        dup = sum(1 for d in plan.duplications if d.applied)
        print(
            f"  O = {frac:4.2f} tau_total  ->  case1: {case1}, "
            f"case2: {case2}, duplications: {dup}"
        )
    print()


def main() -> None:
    result = run_experiment("jpeg", simulate=False)
    sweep_theta(result.fitted)
    sweep_noc_width(result)
    sweep_overhead(result.fitted)


if __name__ == "__main__":
    main()
