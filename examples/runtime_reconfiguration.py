#!/usr/bin/env python
"""The paper's future work: runtime-reconfigurable interconnects.

"Runtime reconfigurability is the next step in our work such that each
application can dispose of its best interconnect infrastructure" —
this example deploys all four designed application systems onto one
FPGA and compares three strategies under two workload mixes:

* STATIC_ALL       — every system resident side by side;
* RECONFIG_SINGLE  — one partially-reconfigurable region, ICAP-swapped
                     on every application change;
* HYBRID_PINNED    — the most switch-hungry applications stay resident,
                     the rest share a region.
"""

from repro.flow import run_all, to_deployment
from repro.hw.device import Device
from repro.hw.synthesis import PLATFORM_BASE
from repro.hw.resources import ComponentKind, component_cost
from repro.reconfig import ReconfigurationScheduler, WorkloadMix


def show(title, sched, mix) -> None:
    print(f"--- {title} ({len(mix.sequence)} invocations, "
          f"{len(mix.switches())} switches) ---")
    for strategy, plan in sched.evaluate(mix).items():
        status = "ok " if plan.feasible else "N/A"
        print(
            f"  {strategy.value:<16} [{status}] "
            f"{plan.resources.luts:>6} LUTs  "
            f"compute {plan.compute_seconds * 1e3:8.2f} ms  "
            f"+ reconfig {plan.reconfig_seconds * 1e3:7.2f} ms "
            f"({plan.reconfig_count}x)  {plan.notes}"
        )
    best = sched.best(mix)
    print(f"  => best: {best.strategy.value}\n")


def main() -> None:
    results = run_all(simulate=False)
    deployments = [to_deployment(r) for r in results.values()]
    static_cost = PLATFORM_BASE + component_cost(ComponentKind.BUS)

    names = [d.name for d in deployments]

    # The real board: plenty of room, statics win.
    big = ReconfigurationScheduler(deployments, static_cost)
    show("xc5vfx130t, alternating mix", big,
         WorkloadMix.round_robin(names, rounds=8))

    # A small device: static deployment does not fit any more.
    small_dev = Device("xc5vlx50-like", luts=36_000, regs=50_000,
                       bram_bits=10**6)
    small = ReconfigurationScheduler(deployments, static_cost, device=small_dev)
    show("small device, alternating mix", small,
         WorkloadMix.round_robin(names, rounds=8))
    show("small device, bursty mix", small,
         WorkloadMix.bursty([(n, 8) for n in names]))


if __name__ == "__main__":
    main()
