#!/usr/bin/env python
"""Design an interconnect from HLS estimates — no platform measurements.

The paper's kernels come from the DWARV C-to-VHDL compiler; when you
have no board numbers to calibrate against, the :mod:`repro.hls`
estimator predicts each kernel's latency and footprint from a loop-nest
description, and the communication volumes follow from the array sizes
— everything Algorithm 1 needs, from first principles.

The example models a 512×512 stereo-depth pipeline:
rectify → census transform → disparity search → median filter.
"""

from repro.core import AnalyticModel, CommGraph, DesignConfig, design_interconnect
from repro.hls import Block, KernelIR, Loop, Op, estimate_kernel_spec
from repro.sim.systems import SystemParams, simulate_baseline, simulate_proposed

W = H = 512
PIXELS = W * H


def build_kernels():
    """Loop-nest IRs for the four pipeline stages."""
    # Rectify: bilinear remap, 4 loads + mults per pixel, streaming.
    rectify = KernelIR(
        "rectify",
        Block.of_loops(Loop(
            trip=PIXELS,
            body=Block([(Op.LOAD, 2), (Op.MUL, 4), (Op.ADD, 6), (Op.STORE, 1)]),
            pipelined=True,
        )),
    )
    # Census: 7x7 window comparisons per pixel.
    census = KernelIR(
        "census_transform",
        Block.of_loops(Loop(
            trip=PIXELS,
            body=Block([(Op.LOAD, 2), (Op.CMP, 48), (Op.LOGIC, 48), (Op.STORE, 1)]),
            pipelined=True,
        )),
    )
    # Disparity: hamming distance over 64 candidates (the hot kernel).
    disparity = KernelIR(
        "disparity_search",
        Block.of_loops(Loop(
            trip=PIXELS,
            body=Block([
                (Op.LOAD, 2), (Op.LOGIC, 128), (Op.ADD, 128),
                (Op.CMP, 64), (Op.STORE, 1),
            ]),
            pipelined=True, ii=2,
        )),
    )
    # Median: 3x3 sorting network.
    median = KernelIR(
        "median_filter",
        Block.of_loops(Loop(
            trip=PIXELS,
            body=Block([(Op.LOAD, 1), (Op.CMP, 19), (Op.STORE, 1)]),
            pipelined=True,
        )),
    )
    return [
        estimate_kernel_spec(rectify, streams_host_io=True),
        estimate_kernel_spec(census, streams_kernel_input=True),
        estimate_kernel_spec(
            disparity, parallelizable=True, streams_kernel_input=True
        ),
        estimate_kernel_spec(median, streams_kernel_input=True,
                             streams_host_io=True),
    ]


def main() -> None:
    specs = build_kernels()
    print("HLS estimates:")
    for s in specs:
        print(
            f"  {s.name:<18} tau={s.tau_cycles / 1e3:8.1f} kcycles   "
            f"{s.resources.luts:>6} LUTs   "
            f"compute speed-up vs host {s.hw_speedup:4.1f}x"
        )

    # Communication volumes follow from the array sizes (bytes).
    census_bits = 8  # 64-bit census descriptor per pixel
    graph = CommGraph(
        kernels={s.name: s for s in specs},
        kk_edges={
            ("rectify", "census_transform"): 2 * PIXELS,  # L+R rectified
            ("census_transform", "disparity_search"): 2 * PIXELS * census_bits,
            ("disparity_search", "median_filter"): PIXELS,
        },
        host_in={"rectify": 2 * PIXELS},  # raw stereo pair
        host_out={"median_filter": PIXELS},  # depth map
    )

    params = SystemParams()
    theta = params.theta_s_per_byte()
    config = DesignConfig(theta_s_per_byte=theta, stream_overhead_s=50e-6)
    plan = design_interconnect("stereo", graph, config)
    print("\n" + plan.describe())

    model = AnalyticModel(graph, theta, host_other_s=0.0)
    pair = model.proposed_vs_baseline(plan)
    print(f"\nanalytic vs baseline : {pair.kernels:.2f}x kernels")

    base = simulate_baseline(graph, 0.0, params)
    prop = simulate_proposed(plan, 0.0, params)
    _, kern = prop.speedup_over(base)
    print(f"simulated vs baseline: {kern:.2f}x kernels "
          f"({base.kernels_s * 1e3:.2f} ms -> {prop.kernels_s * 1e3:.2f} ms)")


if __name__ == "__main__":
    main()
