"""Shared benchmark fixtures.

The experiment results are computed once per session; each bench then
measures the stage that regenerates its table/figure and prints the
artifact (run with ``-s`` to see it inline; every bench also writes its
output under ``benchmarks/out/``).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.flow import run_all
from repro.sim.systems import SystemParams

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def results():
    """Full experiment results for the paper's four applications."""
    return run_all()


@pytest.fixture(scope="session")
def bench_metrics(request):
    """Session-wide metrics registry; exported at the end of the run.

    Benches time their hot paths through :func:`repro.obs.timed` into
    this registry; on teardown the aggregate is written to
    ``benchmarks/out/bench_metrics.json`` and ``.prom`` so CI can diff
    infrastructure timings across runs.
    """
    from repro.obs.export import write_metrics
    from repro.service.metrics import MetricsRegistry

    registry = MetricsRegistry()

    def _export():
        snap = registry.snapshot()
        if not any(snap[k] for k in ("counters", "gauges", "timers", "histograms")):
            return
        OUT_DIR.mkdir(exist_ok=True)
        write_metrics(snap, OUT_DIR / "bench_metrics.json")
        write_metrics(snap, OUT_DIR / "bench_metrics.prom")

    request.addfinalizer(_export)
    return registry


@pytest.fixture(scope="session")
def system_params():
    return SystemParams()


@pytest.fixture(scope="session")
def theta(system_params):
    return system_params.theta_s_per_byte()


@pytest.fixture()
def emit():
    """Print an artifact and persist it under benchmarks/out/."""

    def _emit(name: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}")

    return _emit
