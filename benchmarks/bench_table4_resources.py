"""Table IV — whole-system resource utilization + chosen solutions.

Regenerates the baseline / our-system / NoC-only LUT+register columns
and the solution column, benchmarking the synthesis estimator over the
plans' bills of materials.
"""

from __future__ import annotations

from repro.hw.synthesis import estimate_baseline, estimate_system
from repro.reporting import render_table4
from repro.units import percent_saving

PAPER_SOLUTIONS = {
    "canny": "NoC, SM, P",
    "jpeg": "NoC, SM, P",
    "klt": "SM",
    "fluid": "NoC",
}

PAPER_BASELINE = {
    "canny": (9926, 12707),
    "jpeg": (11755, 11910),
    "klt": (4721, 5430),
    "fluid": (19125, 28793),
}


def compute_table4(results):
    table = {}
    for name, r in results.items():
        graph = r.fitted.graph
        base = estimate_baseline(
            [graph.kernel(k).resources for k in graph.kernel_names()]
        )
        ours = estimate_system(
            "proposed",
            [r.plan.graph.kernel(k).resources for k in r.plan.graph.kernel_names()],
            r.plan.component_counts(),
        )
        noc = estimate_system(
            "noc_only",
            [
                r.noc_only_plan.graph.kernel(k).resources
                for k in r.noc_only_plan.graph.kernel_names()
            ],
            r.noc_only_plan.component_counts(),
        )
        table[name] = (base.total, ours.total, noc.total, r.plan.solution_label())
    return table


def test_table4_resources(benchmark, results, emit):
    table = benchmark(compute_table4, results)
    emit("table4_resources", render_table4(results))
    for name, (base, ours, noc, solution) in table.items():
        assert solution == PAPER_SOLUTIONS[name]
        assert (base.luts, base.regs) == PAPER_BASELINE[name]
        assert base.luts <= ours.luts <= noc.luts
    # Max LUT saving vs NoC-only lands on KLT, near the paper's 33.1 %.
    savings = {
        n: percent_saving(noc.luts, ours.luts)
        for n, (_, ours, noc, _) in table.items()
    }
    assert max(savings, key=savings.get) == "klt"
    assert abs(savings["klt"] - 33.1) < 4.0
    # KLT's custom interconnect is exactly one crossbar (201 LUTs).
    assert table["klt"][1].luts - table["klt"][0].luts == 201
