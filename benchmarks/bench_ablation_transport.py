"""Ablation — store-and-forward vs wormhole NoC switching.

Our default transport is store-and-forward at packet granularity (a
conservative approximation documented in DESIGN.md); the paper's router
is wormhole. This bench quantifies the modelling gap on the real
applications: the whole-system makespans agree within a few percent —
the NoC transfers overlap computation, so switching mode barely moves
the headline results — which is the evidence backing DESIGN.md's claim
that the approximation "preserves the relevant behaviour". At the pure
transport level (no computation to hide behind) wormhole's latency
advantage is visible and grows with hop count.
"""

from __future__ import annotations

from repro.sim.engine import Engine
from repro.sim.noc import NocMesh, NocParams
from repro.sim.systems import SystemParams, simulate_proposed


def evaluate(results):
    rows = {}
    for name, r in results.items():
        if r.plan.noc is None:
            continue
        times = {}
        for transport in ("store_forward", "wormhole"):
            params = SystemParams(noc_transport=transport)
            times[transport] = simulate_proposed(
                r.plan, r.fitted.host_other_s, params
            ).kernels_s
        rows[name] = times
    # Raw transport latency across 6 hops, no computation.
    latency = {}
    for transport in ("store_forward", "wormhole"):
        mesh = NocMesh(
            Engine(), NocParams(width=4, height=4, transport=transport)
        )
        latency[transport] = mesh.transfer_seconds((0, 0), (3, 3), 16 * 1024)
    return rows, latency


def test_ablation_transport(benchmark, results, emit):
    rows, latency = benchmark(evaluate, results)
    lines = [f"{'app':<8}{'store-fwd':>12}{'wormhole':>12}{'delta':>8}"]
    for name, times in rows.items():
        sf, wh = times["store_forward"], times["wormhole"]
        lines.append(
            f"{name:<8}{sf * 1e3:>10.3f}ms{wh * 1e3:>10.3f}ms"
            f"{(wh - sf) / sf:>+7.1%}"
        )
    lines.append(
        f"{'(raw 6-hop 16KiB transfer)':<8}"
        f"{latency['store_forward'] * 1e6:>10.1f}us"
        f"{latency['wormhole'] * 1e6:>10.1f}us"
    )
    emit("ablation_transport", "\n".join(lines))

    # System level: the switching mode moves makespans by only a few %.
    for name, times in rows.items():
        sf, wh = times["store_forward"], times["wormhole"]
        assert abs(wh - sf) / sf < 0.10, name
    # Transport level: wormhole strictly faster over multiple hops.
    assert latency["wormhole"] < latency["store_forward"]
