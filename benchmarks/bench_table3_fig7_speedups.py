"""Table III / Fig. 7 — proposed-system speed-ups vs SW and baseline.

Regenerates the four-row, four-column speed-up table (and Fig. 7, which
charts the same numbers), benchmarking the full analytic evaluation of
the designed systems. The shape assertions bracket the paper's values.
"""

from __future__ import annotations

from repro.core.analytic import AnalyticModel
from repro.reporting import render_table3

PAPER_TABLE3 = {
    "canny": (3.15, 3.88, 1.83, 2.12),
    "jpeg": (2.33, 2.50, 2.87, 3.08),
    "klt": (3.72, 6.58, 1.26, 1.55),
    "fluid": (1.66, 1.68, 1.59, 1.60),
}


def compute_table3(results):
    table = {}
    for name, r in results.items():
        f = r.fitted
        model = AnalyticModel(f.graph, f.theta_s_per_byte, f.host_other_s)
        sw = model.proposed_vs_software(r.plan)
        base = model.proposed_vs_baseline(r.plan)
        table[name] = (sw.application, sw.kernels, base.application, base.kernels)
    return table


def test_table3_fig7_speedups(benchmark, results, emit):
    table = benchmark(compute_table3, results)
    emit("table3_fig7_speedups", render_table3(results))
    for name, paper in PAPER_TABLE3.items():
        ours = table[name]
        for got, want in zip(ours, paper):
            assert abs(got - want) / want < 0.15, (name, got, want)
    # Ranking shape: jpeg best vs baseline, klt best vs software.
    assert max(table, key=lambda n: table[n][2]) == "jpeg"
    assert max(table, key=lambda n: table[n][1]) == "klt"
