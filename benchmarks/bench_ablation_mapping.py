"""Ablation — adaptive mapping vs maximum attachment.

Section IV-B: "An alternative simpler solution is to map all the kernels
and all their local memories to both the NoC and the system
communication infrastructure. However, this mapping solution requires
the maximum number of routers as well as network adapters." The adaptive
mapping must never use more routers/adapters and must save on every app
that keeps a NoC.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import DesignConfig, design_interconnect
from repro.hw.resources import ComponentKind


def ablate_mapping(results):
    rows = {}
    for name, r in results.items():
        f = r.fitted
        config = DesignConfig(
            theta_s_per_byte=f.theta_s_per_byte,
            stream_overhead_s=f.stream_overhead_s,
        )
        full = design_interconnect(
            name, f.graph, replace(config, enable_adaptive_mapping=False)
        )
        adaptive_routers = (
            r.plan.noc.router_count if r.plan.noc is not None else 0
        )
        full_routers = full.noc.router_count if full.noc is not None else 0
        rows[name] = (
            adaptive_routers,
            full_routers,
            r.plan.component_counts().get(ComponentKind.NA_KERNEL, 0)
            + r.plan.component_counts().get(ComponentKind.NA_MEMORY, 0),
            full.component_counts().get(ComponentKind.NA_KERNEL, 0)
            + full.component_counts().get(ComponentKind.NA_MEMORY, 0),
        )
    return rows


def test_ablation_adaptive_mapping(benchmark, results, emit):
    rows = benchmark(ablate_mapping, results)
    lines = [
        f"{'app':<8}{'routers adapt':>15}{'routers full':>14}"
        f"{'NAs adapt':>11}{'NAs full':>10}"
    ]
    for name, (ra, rf, na, nf) in rows.items():
        lines.append(f"{name:<8}{ra:>15}{rf:>14}{na:>11}{nf:>10}")
    emit("ablation_mapping", "\n".join(lines))
    for name, (ra, rf, na, nf) in rows.items():
        n_kernels = len(results[name].plan.graph.kernel_names())
        assert rf == 2 * n_kernels  # maximum attachment
        assert ra <= rf
        assert na <= nf
        if results[name].plan.noc is not None and name != "fluid":
            # Fluid's all-to-all traffic genuinely needs full attachment;
            # every other NoC app saves routers.
            assert ra < rf
