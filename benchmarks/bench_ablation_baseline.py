"""Ablation — how much would a smarter baseline close the gap?

The paper's baseline fetches each kernel's full input before computing
(Section III-A), noting that fetch could pipeline with computation but
adopting the general sequential model. This bench simulates the
double-buffered variant (`simulate_pipelined_baseline`) on all four
applications: it beats the sequential baseline, but the custom
interconnect still wins on every app — the bus remains the bottleneck
because *all* kernel-to-kernel bytes still cross it twice.
"""

from __future__ import annotations

from repro.sim.systems import (
    simulate_baseline,
    simulate_pipelined_baseline,
    simulate_proposed,
)


def evaluate(results, params):
    rows = {}
    for name, r in results.items():
        base = simulate_baseline(r.fitted.graph, r.fitted.host_other_s, params)
        pipe = simulate_pipelined_baseline(
            r.fitted.graph, r.fitted.host_other_s, params
        )
        prop = simulate_proposed(r.plan, r.fitted.host_other_s, params)
        rows[name] = (base.kernels_s, pipe.kernels_s, prop.kernels_s)
    return rows


def test_ablation_pipelined_baseline(benchmark, results, system_params, emit):
    rows = benchmark(evaluate, results, system_params)
    lines = [
        f"{'app':<8}{'sequential':>12}{'pipelined':>12}{'proposed':>12}"
        f"{'pipe gain':>11}{'ours gain':>11}"
    ]
    for name, (base, pipe, prop) in rows.items():
        lines.append(
            f"{name:<8}{base * 1e3:>10.3f}ms{pipe * 1e3:>10.3f}ms"
            f"{prop * 1e3:>10.3f}ms{base / pipe:>10.2f}x{base / prop:>10.2f}x"
        )
    emit("ablation_baseline", "\n".join(lines))
    for name, (base, pipe, prop) in rows.items():
        # Double buffering helps (or at worst ties)...
        assert pipe <= base * 1.001, name
        # ...but the custom interconnect still beats it everywhere.
        assert prop < pipe, name
    # And the gap it cannot close stays large where traffic is
    # kernel-to-kernel heavy (jpeg).
    base_j, pipe_j, prop_j = rows["jpeg"]
    assert pipe_j / prop_j > 1.5
