"""Scalability — bus-based vs hybrid interconnect as kernel count grows.

The paper's motivation (Section I): buses "become inefficient when the
number of cores rises" while NoCs scale. We sweep synthetic streaming
pipelines of 2..10 kernels and regenerate the crossover story: the
hybrid interconnect's speed-up over the bus-only baseline grows with the
kernel count, and the simulated bus utilization saturates.
"""

from __future__ import annotations

from repro.core import CommGraph, DesignConfig, KernelSpec, design_interconnect
from repro.core.analytic import AnalyticModel
from repro.hw.resources import ResourceCost
from repro.sim.systems import SystemParams, simulate_baseline, simulate_proposed

KERNEL_COUNTS = (2, 4, 6, 8, 10)
EDGE_BYTES = 128_000
TAU = 25_000.0


def pipeline_graph(n: int) -> CommGraph:
    """A streaming pipeline: host -> k0 -> k1 -> ... -> host.

    Alternating fan-out keeps the graph from collapsing entirely into
    shared-memory pairs (every second stage feeds two successors).
    """
    ks = {
        f"k{i}": KernelSpec(
            f"k{i}", TAU, TAU * 16, resources=ResourceCost(500, 500)
        )
        for i in range(n)
    }
    edges = {}
    for i in range(n - 1):
        edges[(f"k{i}", f"k{i + 1}")] = EDGE_BYTES
        if i + 2 < n and i % 2 == 0:
            edges[(f"k{i}", f"k{i + 2}")] = EDGE_BYTES // 4
    return CommGraph(
        kernels=ks,
        kk_edges=edges,
        host_in={"k0": EDGE_BYTES},
        host_out={f"k{n - 1}": EDGE_BYTES},
    )


def sweep(params: SystemParams):
    theta = params.theta_s_per_byte()
    config = DesignConfig(theta_s_per_byte=theta, stream_overhead_s=0.0)
    rows = []
    for n in KERNEL_COUNTS:
        g = pipeline_graph(n)
        plan = design_interconnect(f"pipe{n}", g, config)
        model = AnalyticModel(g, theta, host_other_s=0.0)
        analytic = model.proposed_vs_baseline(plan).kernels
        base = simulate_baseline(g, 0.0, params)
        prop = simulate_proposed(plan, 0.0, params)
        _, sim_speedup = prop.speedup_over(base)
        bus_util = base.bus_busy_s / base.kernels_s
        rows.append((n, analytic, sim_speedup, bus_util))
    return rows


def test_scalability_with_kernel_count(benchmark, system_params, emit):
    rows = benchmark.pedantic(sweep, args=(system_params,), rounds=3, iterations=1)
    lines = [f"{'kernels':>8}{'analytic':>10}{'simulated':>11}{'bus util':>10}"]
    for n, a, s, u in rows:
        lines.append(f"{n:>8}{a:>9.2f}x{s:>10.2f}x{u:>9.1%}")
    emit("scalability_kernels", "\n".join(lines))
    speedups = [a for _, a, _, _ in rows]
    # More kernels -> more kernel-to-kernel traffic hidden -> bigger win.
    assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > speedups[0] * 1.2
    # The bus-only baseline spends most of its time communicating.
    assert rows[-1][3] > 0.5
