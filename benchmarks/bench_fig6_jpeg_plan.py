"""Fig. 6 — the designed interconnect for the JPEG decoder.

Benchmarks Algorithm 1 itself (duplication, shared-memory detection,
adaptive mapping, mesh placement, pipelining checks) on the calibrated
JPEG communication graph, and checks the resulting topology against the
paper's figure.
"""

from __future__ import annotations

from repro.core import DesignConfig, design_interconnect
from repro.core.topology import KernelAttach, MemoryAttach
from repro.reporting import render_fig6


def test_fig6_jpeg_plan(benchmark, results, emit):
    fitted = results["jpeg"].fitted
    config = DesignConfig(
        theta_s_per_byte=fitted.theta_s_per_byte,
        stream_overhead_s=fitted.stream_overhead_s,
    )
    plan = benchmark(design_interconnect, "jpeg", fitted.graph, config)
    emit("fig6_jpeg_plan", render_fig6(results["jpeg"]))

    # Fig. 6's structure: huff_ac_dec duplicated; dquantz->j_rev_dct
    # shared through the crossbar; dc + both ac kernels on the NoC with
    # dquantz's local memory; dc's memory on the bus only.
    assert [d.kernel for d in plan.duplications if d.applied] == ["huff_ac_dec"]
    link = plan.sharing[0]
    assert (link.producer, link.consumer) == ("dquantz_lum", "j_rev_dct")
    assert link.crossbar
    assert set(plan.noc.kernel_nodes) == {
        "huff_dc_dec", "huff_ac_dec#0", "huff_ac_dec#1",
    }
    assert plan.noc.memory_nodes == ("dquantz_lum",)
    dc = plan.mappings["huff_dc_dec"]
    assert (dc.attach_kernel, dc.attach_memory) == (
        KernelAttach.K2, MemoryAttach.M1,
    )
    # Duplicated huff_ac memories are over-subscribed -> multiplexers
    # (the paper's Section V-B observation).
    assert {"huff_ac_dec#0", "huff_ac_dec#1"} <= set(plan.mux_kernels())
    assert plan.solution_label() == "NoC, SM, P"
