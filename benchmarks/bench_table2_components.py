"""Table II — interconnect component resource costs and frequencies.

Regenerates the component library table and benchmarks the synthesis
estimator that prices a full interconnect bill of materials from it.
"""

from __future__ import annotations

from repro.hw.resources import ComponentKind, ResourceCost, component_cost
from repro.hw.synthesis import interconnect_cost
from repro.reporting import render_table2

BOM = {
    ComponentKind.BUS: 1,
    ComponentKind.CROSSBAR: 2,
    ComponentKind.ROUTER: 8,
    ComponentKind.NA_KERNEL: 5,
    ComponentKind.NA_MEMORY: 3,
    ComponentKind.MUX: 4,
    ComponentKind.NOC_GLUE: 1,
}


def test_table2_component_library(benchmark, emit):
    total, breakdown = benchmark(interconnect_cost, BOM)
    emit("table2_components", render_table2())
    # Paper values, verbatim.
    assert component_cost(ComponentKind.BUS) == ResourceCost(1048, 188)
    assert component_cost(ComponentKind.CROSSBAR) == ResourceCost(201, 200)
    assert component_cost(ComponentKind.ROUTER) == ResourceCost(309, 353)
    assert component_cost(ComponentKind.NA_KERNEL) == ResourceCost(396, 426)
    assert component_cost(ComponentKind.NA_MEMORY) == ResourceCost(60, 114)
    assert total.luts == sum(c.luts for _, c in breakdown.values())
    # Section IV-B's claim: 4 routers ≈ 5x the shared-memory solution.
    four_routers = component_cost(ComponentKind.ROUTER) * 4
    crossbar = component_cost(ComponentKind.CROSSBAR)
    assert 4.0 < four_routers.luts / crossbar.luts < 8.0
