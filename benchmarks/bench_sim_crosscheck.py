"""Cross-check — discrete-event simulation vs the analytic model.

Not a paper artifact, but the evidence EXPERIMENTS.md cites: the DES
(which includes bus transaction overheads, NoC hop latency and link
contention the closed-form model ignores) must reproduce the analytic
story. Benchmarks the full simulated execution of all four proposed
systems.
"""

from __future__ import annotations

from repro.reporting import render_simulation_crosscheck
from repro.sim.systems import SystemParams, simulate_baseline, simulate_proposed


def simulate_everything(results, params):
    out = {}
    for name, r in results.items():
        base = simulate_baseline(r.fitted.graph, r.fitted.host_other_s, params)
        prop = simulate_proposed(r.plan, r.fitted.host_other_s, params)
        out[name] = (base, prop)
    return out


def test_sim_crosscheck(benchmark, results, system_params, emit):
    sims = benchmark.pedantic(
        simulate_everything, args=(results, system_params), rounds=3, iterations=1
    )
    emit("sim_crosscheck", render_simulation_crosscheck(results))
    for name, (base, prop) in sims.items():
        r = results[name]
        # Baseline: sequential bus system tracks Eq. 2 tightly.
        assert abs(base.kernels_s - r.analytic_baseline.kernels_s) < (
            0.05 * r.analytic_baseline.kernels_s
        )
        # Proposed: concurrency + contention land in the model's envelope.
        assert abs(prop.kernels_s - r.analytic_proposed.kernels_s) < (
            0.5 * r.analytic_proposed.kernels_s
        )
        app, kern = prop.speedup_over(base)
        assert app > 1.0 and kern > 1.0
