"""Extension bench — weighted-round-robin QoS on contended NoC links.

The router the paper adapts (Heisswolf et al., [39]) provides QoS via
WRR scheduling. This bench reproduces its core effect on our mesh: a
latency-critical light flow contends with a bulk flow on one link.
Total link occupancy is fixed (WRR only reorders grants), so the
observable is the *light flow's completion time*:

* weighting the light input up gets it through almost as if alone;
* plain round-robin interleaves it 1:1 with bulk packets;
* weighting the bulk input up starves (but never blocks) the light flow.

The bulk flow's completion and the makespan stay put in all three
policies — service differentiation, not magic bandwidth.
"""

from __future__ import annotations

from repro.sim.engine import Engine
from repro.sim.noc import NocMesh, NocParams

BULK = 64 * 1024
LIGHT = 8 * 1024
PACKET = 1024

POLICIES = {
    "prioritize light": {(1, 0): 8, (0, 0): 1},
    "plain RR": None,
    "prioritize bulk": {(0, 0): 8, (1, 0): 1},
}


def run_contention(weights):
    """Two flows over the shared (1,0)->(2,0) link; returns end times."""
    engine = Engine()
    mesh = NocMesh(engine, NocParams(width=3, height=1, max_packet_bytes=PACKET))
    if weights:
        link = mesh.links[((1, 0), (2, 0))]
        link.arbiter.weights.update(weights)
    ends = {}

    def flow(tag, src, nbytes):
        yield from mesh.send(src, (2, 0), nbytes, flow=tag)
        ends[tag] = engine.now

    engine.process(flow("bulk", (0, 0), BULK))   # enters link from (0,0)
    engine.process(flow("light", (1, 0), LIGHT))  # injected at (1,0)
    engine.run()
    return ends


def compare():
    return {name: run_contention(w) for name, w in POLICIES.items()}


def test_qos_wrr_differentiation(benchmark, emit):
    outcomes = benchmark(compare)
    solo = run_contention({(1, 0): 10**6})  # light effectively alone
    lines = [f"{'policy':<18}{'light done':>12}{'bulk done':>12}"]
    for name, ends in outcomes.items():
        lines.append(
            f"{name:<18}{ends['light'] * 1e6:>10.1f}us"
            f"{ends['bulk'] * 1e6:>10.1f}us"
        )
    emit("qos_wrr", "\n".join(lines))

    light = {name: ends["light"] for name, ends in outcomes.items()}
    bulk = {name: ends["bulk"] for name, ends in outcomes.items()}
    # Service differentiation on the light flow's latency.
    assert light["prioritize light"] < light["plain RR"] < light["prioritize bulk"]
    # Prioritized, the light flow approaches its uncontended latency.
    assert light["prioritize light"] < 1.5 * solo["light"]
    # The link is work-conserving: the last completion barely moves.
    makespans = [max(e.values()) for e in outcomes.values()]
    assert max(makespans) < 1.05 * min(makespans)
    # Nobody is ever starved outright.
    assert all(b > 0 for b in bulk.values())
