"""Fig. 5 — the JPEG data-communication profiling graph.

Benchmarks the QUAD substitute end-to-end: executing the instrumented
JPEG decoder under the tracer and extracting the quantitative
producer→consumer graph. This is the workload the paper feeds to the
design algorithm, regenerated from scratch every round.
"""

from __future__ import annotations

from repro.apps import get_application
from repro.profiling.report import render_profile_graph
from repro.reporting import render_fig5


def profile_jpeg():
    app = get_application("jpeg")
    profile = app.run_profiled(verify=True)
    return app, profile


def test_fig5_jpeg_profile(benchmark, results, emit):
    app, profile = benchmark.pedantic(profile_jpeg, rounds=3, iterations=1)
    folded = profile.restricted_to(app.kernel_names(), "host")
    emit("fig5_jpeg_profile", render_fig5(results["jpeg"]))
    emit("fig5_jpeg_profile_full", render_profile_graph(folded))

    # The Fig. 5 structure, as described in Section V-B.
    assert folded.consumers_of("dquantz_lum") == ("j_rev_dct",)
    assert folded.producers_of("j_rev_dct") == ("dquantz_lum", "host")
    assert folded.producers_of("huff_dc_dec") == ("host",)
    assert folded.consumers_of("huff_dc_dec") == ("dquantz_lum",)
    # Every edge has a positive UMA count no larger than its bytes.
    for e in folded.edges:
        assert 0 < e.umas <= e.bytes
