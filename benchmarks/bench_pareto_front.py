"""Extension bench — Pareto front of interconnect configurations.

For each paper application, enumerate the designer's configuration
lattice and extract the time/area Pareto front. The paper's implicit
claim — that the hybrid design is the right operating point — shows up
as: the hybrid-full configuration is always on the front, the NoC-only
strawman never is (the adaptive variant dominates it), and bus-only
anchors the cheap end.
"""

from __future__ import annotations

from repro.core.designer import DesignConfig
from repro.explore import enumerate_design_points, pareto_front


def compute_fronts(results):
    out = {}
    for name, r in results.items():
        f = r.fitted
        config = DesignConfig(
            theta_s_per_byte=f.theta_s_per_byte,
            stream_overhead_s=f.stream_overhead_s,
        )
        points = enumerate_design_points(
            name, f.graph, config, f.host_other_s
        )
        out[name] = (points, pareto_front(points))
    return out


def test_pareto_front(benchmark, results, emit):
    fronts = benchmark(compute_fronts, results)
    lines = []
    for name, (points, front) in fronts.items():
        lines.append(f"{name}:")
        front_labels = {p.label for p in front}
        for p in sorted(points, key=lambda p: p.kernels_seconds):
            mark = "*" if p.label in front_labels else " "
            lines.append(
                f"  {mark} {p.label:<20} {p.kernels_seconds * 1e3:8.3f} ms  "
                f"{p.luts:>6} LUTs"
            )
    emit("pareto_front", "\n".join(lines))

    for name, (points, front) in fronts.items():
        labels = {p.label for p in front}
        by_label = {p.label: p for p in points}
        # The cheap anchor is always Pareto-optimal.
        assert "bus-only" in labels, name
        # The paper's chosen design is on the front for every app.
        assert "hybrid-full" in labels or (
            by_label["hybrid-full"].kernels_seconds
            == min(p.kernels_seconds for p in points)
        ), name
        # The NoC-only strawman is dominated whenever adaptive mapping
        # actually trims something (everywhere except fluid).
        if name != "fluid":
            assert "noc-only" not in labels, name
