"""Ablation — shared local memory on/off.

DESIGN.md: the SM solution exists purely to save resources; the paper
argues its performance equals the NoC for exclusive pairs while a pair
of NoC attachments costs ~5x more. Disabling sharing must therefore
leave analytic performance unchanged and strictly increase resources for
every app that used SM (canny, jpeg, klt).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import DesignConfig, design_interconnect
from repro.core.analytic import AnalyticModel
from repro.hw.synthesis import estimate_system


def ablate_sharing(results):
    rows = {}
    for name, r in results.items():
        f = r.fitted
        config = DesignConfig(
            theta_s_per_byte=f.theta_s_per_byte,
            stream_overhead_s=f.stream_overhead_s,
        )
        no_sm = design_interconnect(name, f.graph, replace(config, enable_sharing=False))
        model = AnalyticModel(f.graph, f.theta_s_per_byte, f.host_other_s)
        perf_with = model.proposed(r.plan).kernels_s
        perf_without = model.proposed(no_sm).kernels_s
        luts_with = r.synth_proposed.total.luts
        luts_without = estimate_system(
            "no_sm",
            [no_sm.graph.kernel(k).resources for k in no_sm.graph.kernel_names()],
            no_sm.component_counts(),
        ).total.luts
        rows[name] = (perf_with, perf_without, luts_with, luts_without)
    return rows


def test_ablation_sharing(benchmark, results, emit):
    rows = benchmark(ablate_sharing, results)
    lines = [f"{'app':<8}{'t SM':>12}{'t no-SM':>12}{'LUTs SM':>10}{'LUTs no-SM':>12}"]
    for name, (t1, t2, l1, l2) in rows.items():
        lines.append(f"{name:<8}{t1 * 1e3:>10.3f}ms{t2 * 1e3:>10.3f}ms{l1:>10}{l2:>12}")
    emit("ablation_sharing", "\n".join(lines))
    for name, r in results.items():
        t1, t2, l1, l2 = rows[name]
        if r.plan.sharing:
            # Same hidden traffic either way (case-2 pipelining may shift
            # marginally); resources strictly worse without SM.
            assert abs(t1 - t2) < 0.15 * t1
            assert l2 > l1
        else:
            assert l2 == l1
