"""Fig. 9 — energy of the proposed system normalized to the baseline.

The paper: power is near-identical between the two systems (minor
increase for ours), so the reduced execution time translates into up to
66.5 % energy saving (JPEG).
"""

from __future__ import annotations

from repro.hw.energy import EnergyModel, compare_energy
from repro.reporting import render_fig9


def compute_fig9(results):
    model = EnergyModel()
    reports = {}
    for name, r in results.items():
        reports[name] = compare_energy(
            name,
            model,
            baseline_resources=r.synth_baseline.total,
            proposed_resources=r.synth_proposed.total,
            baseline_time_s=r.analytic_baseline.application_s,
            proposed_time_s=r.analytic_proposed.application_s,
        )
    return reports


def compute_fig9_simulated(results):
    """Activity-refined variant: measured bus bytes / NoC byte-hops."""
    from repro.hw.energy import compare_energy_simulated

    model = EnergyModel()
    return {
        name: compare_energy_simulated(
            name,
            model,
            baseline_resources=r.synth_baseline.total,
            proposed_resources=r.synth_proposed.total,
            baseline_sim=r.sim_baseline,
            proposed_sim=r.sim_proposed,
        )
        for name, r in results.items()
    }


def test_fig9_energy(benchmark, results, emit):
    reports = benchmark(compute_fig9, results)
    emit("fig9_energy", render_fig9(results))
    savings = {n: rep.saving_percent for n, rep in reports.items()}
    assert all(s > 0 for s in savings.values())
    assert max(savings, key=savings.get) == "jpeg"
    assert abs(savings["jpeg"] - 66.5) < 3.0
    for rep in reports.values():
        increase = (rep.proposed_power_w - rep.baseline_power_w) / rep.baseline_power_w
        assert 0 <= increase < 0.08  # "minor increase"

    # Activity-refined energy (simulated transfer counts included) tells
    # the same story, with at-least-equal savings: the baseline moves
    # every kernel byte over the bus twice.
    detailed = compute_fig9_simulated(results)
    lines = [f"{'app':<8}{'resource-time saving':>22}{'with activity':>15}"]
    for name in reports:
        lines.append(
            f"{name:<8}{reports[name].saving_percent:>21.1f}%"
            f"{detailed[name].saving_percent:>14.1f}%"
        )
    emit("fig9_energy_simulated", "\n".join(lines))
    for name in reports:
        assert detailed[name].saving_percent > 0
        assert max(
            detailed[name].saving_percent for name in reports
        ) == detailed["jpeg"].saving_percent
