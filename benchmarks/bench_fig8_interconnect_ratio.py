"""Fig. 8 — custom-interconnect resources normalized to kernel resources.

The paper's claim: "The interconnect uses only 40.7% resources compared
to the resources used for computing at most."
"""

from __future__ import annotations

from repro.hw.synthesis import estimate_system
from repro.reporting import render_fig8


def compute_fig8(results):
    ratios = {}
    for name, r in results.items():
        est = estimate_system(
            "proposed",
            [r.plan.graph.kernel(k).resources for k in r.plan.graph.kernel_names()],
            r.plan.component_counts(),
        )
        ratios[name] = est.interconnect_over_kernels
    return ratios


def test_fig8_interconnect_ratio(benchmark, results, emit):
    ratios = benchmark(compute_fig8, results)
    emit("fig8_interconnect_ratio", render_fig8(results))
    worst = max(ratios.values())
    assert abs(worst - 0.407) < 0.06  # the paper's 40.7 % bound
    assert min(ratios, key=ratios.get) == "klt"  # one crossbar only
    assert all(v > 0 for v in ratios.values())
