"""Fig. 4 — baseline-vs-software speed-ups + comm/comp ratio.

Regenerates the two bar series and the ratio line of the paper's Fig. 4
for all four applications, benchmarking the analytic baseline evaluation
(profile volumes → Eq. 2 → speed-ups).
"""

from __future__ import annotations

from repro.core.analytic import AnalyticModel
from repro.reporting import render_fig4


def compute_fig4(results):
    rows = {}
    for name, r in results.items():
        f = r.fitted
        model = AnalyticModel(f.graph, f.theta_s_per_byte, f.host_other_s)
        pair = model.baseline_vs_software()
        rows[name] = (pair.application, pair.kernels, model.baseline().comm_comp_ratio)
    return rows


def test_fig4_baseline_speedups(benchmark, results, emit):
    rows = benchmark(compute_fig4, results)
    emit("fig4_baseline", render_fig4(results))
    # Shape: jpeg loses to SW, everything else wins; jpeg ratio 3.63.
    assert rows["jpeg"][0] < 1.0
    for name in ("canny", "klt", "fluid"):
        assert rows[name][0] > 1.0
    assert abs(rows["jpeg"][2] - 3.63) < 0.05
    avg_ratio = sum(v[2] for v in rows.values()) / len(rows)
    assert abs(avg_ratio - 2.09) < 0.05
