"""Cross-validation — HLS estimates vs calibrated kernel times.

Two independent sources for each kernel's computation weight:

* *calibrated*: fitted from the paper's published ratios plus the
  profiled work counters (the reproduction's default);
* *HLS-estimated*: predicted from loop-nest IR by the DWARV-like
  estimator (`repro.hls.kernels`), no paper numbers involved.

Agreement between the two supports the calibration: KLT and Fluid agree
on per-kernel shares within a few percentage points, JPEG agrees on the
ranking (huff_ac_dec hottest — the kernel the paper duplicates). Canny
is the known divergence: hysteresis' trip count is data-dependent
(connectivity sweeps until convergence), which an IR-level estimator
cannot know; the bench asserts only ranking overlap there.
"""

from __future__ import annotations

from repro.hls import estimate_kernel
from repro.hls.kernels import kernel_irs_for


def shares(results):
    out = {}
    for app, r in results.items():
        graph = r.fitted.graph
        cal = {
            k: graph.kernel(k).tau_cycles
            for k in graph.kernel_names()
            if "#" not in k  # compare pre-duplication kernels
        }
        # Fold duplicated copies back into their original kernel.
        for k in graph.kernel_names():
            if "#" in k:
                base = k.split("#")[0]
                cal[base] = cal.get(base, 0.0) + graph.kernel(k).tau_cycles
        hls = {
            name: estimate_kernel(ir).tau_cycles
            for name, ir in kernel_irs_for(app).items()
        }
        cal_total = sum(cal.values())
        hls_total = sum(hls.values())
        out[app] = {
            k: (cal[k] / cal_total, hls[k] / hls_total) for k in cal
        }
    return out


def test_hls_crosscheck(benchmark, results, emit):
    data = benchmark(shares, results)
    lines = []
    for app, rows in data.items():
        lines.append(f"{app}:")
        for k, (c, h) in sorted(rows.items(), key=lambda kv: -kv[1][0]):
            lines.append(f"  {k:<20} calibrated {c:6.1%}   HLS {h:6.1%}")
    emit("hls_crosscheck", "\n".join(lines))

    def hottest(rows, idx):
        return max(rows, key=lambda k: rows[k][idx])

    # The kernels both methods call hottest agree where trip counts are
    # statically known.
    for app in ("jpeg", "klt", "fluid"):
        rows = data[app]
        assert hottest(rows, 0) == hottest(rows, 1), app
    # JPEG: the duplicated kernel is hottest under both views.
    assert hottest(data["jpeg"], 1) == "huff_ac_dec"
    # KLT and fluid shares agree within 10 percentage points per kernel.
    for app in ("klt", "fluid"):
        for k, (c, h) in data[app].items():
            assert abs(c - h) < 0.10, (app, k)
    # Canny: data-dependent hysteresis — require ranking overlap only.
    canny = data["canny"]
    top2_cal = set(sorted(canny, key=lambda k: -canny[k][0])[:2])
    top2_hls = set(sorted(canny, key=lambda k: -canny[k][1])[:2])
    assert top2_cal & top2_hls
