"""Ablation — kernel duplication on/off (the Δ_dp term).

JPEG is the app the paper duplicates (``huff_ac_dec``); turning
duplication off must cost analytic performance and save one kernel core
of resources, while leaving the other design decisions in place.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import DesignConfig, design_interconnect
from repro.core.analytic import AnalyticModel
from repro.hw.resources import ComponentKind, component_cost
from repro.hw.synthesis import estimate_system


def ablate_duplication(fitted):
    config = DesignConfig(
        theta_s_per_byte=fitted.theta_s_per_byte,
        stream_overhead_s=fitted.stream_overhead_s,
    )
    with_dup = design_interconnect("jpeg", fitted.graph, config)
    without = design_interconnect(
        "jpeg", fitted.graph, replace(config, enable_duplication=False)
    )
    model = AnalyticModel(fitted.graph, fitted.theta_s_per_byte, fitted.host_other_s)
    return {
        "with": (
            model.proposed(with_dup).kernels_s,
            estimate_system(
                "d",
                [with_dup.graph.kernel(k).resources
                 for k in with_dup.graph.kernel_names()],
                with_dup.component_counts(),
            ).total.luts,
            with_dup,
        ),
        "without": (
            model.proposed(without).kernels_s,
            estimate_system(
                "n",
                [without.graph.kernel(k).resources
                 for k in without.graph.kernel_names()],
                without.component_counts(),
            ).total.luts,
            without,
        ),
    }


def test_ablation_duplication(benchmark, results, emit):
    fitted = results["jpeg"].fitted
    rows = benchmark(ablate_duplication, fitted)
    t_with, l_with, plan_with = rows["with"]
    t_without, l_without, plan_without = rows["without"]
    emit(
        "ablation_duplication",
        f"jpeg with duplication   : {t_with * 1e3:.3f} ms, {l_with} LUTs\n"
        f"jpeg without duplication: {t_without * 1e3:.3f} ms, {l_without} LUTs",
    )
    assert any(d.applied for d in plan_with.duplications)
    assert plan_without.duplications == ()
    # Duplication buys time and costs area.
    assert t_with < t_without
    assert l_with > l_without
    # The area delta is one huff_ac_dec core plus its NoC attachment
    # (router + kernel network adapter + BRAM-port mux).
    ac = fitted.graph.kernel("huff_ac_dec").resources.luts
    attachment = (
        component_cost(ComponentKind.ROUTER).luts
        + component_cost(ComponentKind.NA_KERNEL).luts
        + component_cost(ComponentKind.MUX).luts
    )
    assert l_with - l_without == ac + attachment
