"""Performance benchmarks of the reproduction's own infrastructure.

Not paper artifacts — these track the throughput of the two hot
substrates so performance regressions in the profiler or the simulator
show up in CI:

* the QUAD-substitute tracer (interval-map updates per second while
  profiling the JPEG decoder end to end);
* the discrete-event engine (events per second under heavy resource
  contention);
* the mesh NoC transport (bytes per simulated send).

Every bench also streams its wall-clock through the session
``bench_metrics`` registry (see ``conftest.py``), so one run leaves an
exportable ``bench_metrics.{json,prom}`` aggregate behind.
"""

from __future__ import annotations

from repro.apps import get_application
from repro.obs import timed
from repro.sim.engine import Engine, Resource
from repro.sim.noc import NocMesh, NocParams


def profile_jpeg_scaled():
    app = get_application("jpeg", scale=4)
    return app.run_profiled(verify=False)


def test_perf_profiler_throughput(benchmark, bench_metrics):
    def run():
        with timed(bench_metrics, "bench_profiler_seconds"):
            return profile_jpeg_scaled()

    profile = benchmark.pedantic(run, rounds=3, iterations=1)
    assert profile.total_bytes() > 0


def contention_storm(n_procs: int = 50, rounds: int = 40) -> float:
    engine = Engine()
    res = Resource(engine, capacity=2)

    def worker(idx: int):
        for _ in range(rounds):
            yield res.request(idx)
            yield 1e-6
            res.release()

    for i in range(n_procs):
        engine.process(worker(i))
    return engine.run()


def test_perf_engine_contention(benchmark, bench_metrics):
    def run():
        with timed(bench_metrics, "bench_engine_seconds"):
            return contention_storm()

    makespan = benchmark(run)
    # 50 workers x 40 slots on 2 servers of 1 us each.
    assert makespan > 0.0009


def noc_storm():
    engine = Engine()
    mesh = NocMesh(engine, NocParams(width=4, height=4, max_packet_bytes=1024))
    done = []

    def flow(src, dst, nbytes):
        yield from mesh.send(src, dst, nbytes)
        done.append(engine.now)

    for i in range(8):
        engine.process(flow((i % 4, 0), ((i + 1) % 4, 3), 32 * 1024))
    engine.run()
    return mesh


def test_perf_noc_transport(benchmark, bench_metrics):
    def run():
        with timed(bench_metrics, "bench_noc_seconds"):
            return noc_storm()

    mesh = benchmark(run)
    assert mesh.bytes_delivered == 8 * 32 * 1024
