"""Ablation — sweep the bus per-byte cost θ.

The custom interconnect's value comes from hiding bus transfers, so the
proposed-vs-baseline speed-up must grow monotonically with θ (slower
buses → bigger win) and approach 1 as the bus becomes free. This is the
crossover analysis DESIGN.md calls out: on a platform with a fast enough
bus, the custom interconnect stops paying for itself.
"""

from __future__ import annotations

from repro.core import DesignConfig, design_interconnect
from repro.core.analytic import AnalyticModel

#: Multipliers on the calibrated θ (1.0 = the ML510-like platform).
SWEEP = (0.01, 0.1, 0.5, 1.0, 2.0, 5.0)


def sweep_theta(fitted):
    out = []
    for mult in SWEEP:
        theta = fitted.theta_s_per_byte * mult
        config = DesignConfig(
            theta_s_per_byte=theta,
            stream_overhead_s=fitted.stream_overhead_s,
        )
        plan = design_interconnect("jpeg", fitted.graph, config)
        model = AnalyticModel(fitted.graph, theta, fitted.host_other_s)
        speedup = model.proposed_vs_baseline(plan).kernels
        out.append((mult, speedup))
    return out


def test_ablation_theta_sweep(benchmark, results, emit):
    fitted = results["jpeg"].fitted
    rows = benchmark(sweep_theta, fitted)
    lines = [f"{'theta multiplier':>16}  {'speedup vs baseline':>20}"]
    for mult, speedup in rows:
        lines.append(f"{mult:>16.2f}  {speedup:>19.2f}x")
    emit("ablation_theta", "\n".join(lines))
    speedups = [s for _, s in rows]
    # Monotone non-decreasing in theta; degenerates to ~1 on free buses.
    assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
    assert speedups[0] < 1.3
    assert speedups[-1] > 3.0
