"""Extension bench — runtime reconfigurability (the paper's future work).

Evaluates the three deployment strategies for the four designed
application systems over workload mixes of increasing burstiness, on
the real board and on a constrained device. The qualitative story:

* when everything fits, static deployment wins (zero switch cost);
* on a constrained device only the reconfigurable strategies fit, and
  their overhead shrinks as the mix gets burstier;
* pinning the hottest application never loses to blind reconfiguration.
"""

from __future__ import annotations

from repro.flow import to_deployment
from repro.hw.device import Device
from repro.hw.resources import ComponentKind, component_cost
from repro.hw.synthesis import PLATFORM_BASE
from repro.reconfig import ReconfigurationScheduler, Strategy, WorkloadMix

SMALL = Device("constrained", luts=36_000, regs=50_000, bram_bits=10**6)
BURSTS = (1, 2, 4, 8)  # invocations per application per burst


def evaluate(results):
    deployments = [to_deployment(r) for r in results.values()]
    static_cost = PLATFORM_BASE + component_cost(ComponentKind.BUS)
    names = [d.name for d in deployments]
    big = ReconfigurationScheduler(deployments, static_cost)
    small = ReconfigurationScheduler(deployments, static_cost, device=SMALL)
    rows = []
    for burst in BURSTS:
        mix = WorkloadMix.bursty([(n, burst) for n in names] * (8 // burst))
        big_best = big.best(mix)
        small_plans = small.evaluate(mix)
        rows.append((burst, big_best, small_plans))
    return rows


def test_reconfig_strategies(benchmark, results, emit):
    rows = benchmark(evaluate, results)
    lines = [
        f"{'burst':>6}  {'big-device best':<16}  "
        f"{'small reconfig (ms)':>20}  {'small hybrid (ms)':>18}"
    ]
    for burst, big_best, small_plans in rows:
        r = small_plans[Strategy.RECONFIG_SINGLE]
        h = small_plans[Strategy.HYBRID_PINNED]
        lines.append(
            f"{burst:>6}  {big_best.strategy.value:<16}  "
            f"{r.reconfig_seconds * 1e3:>20.2f}  {h.reconfig_seconds * 1e3:>18.2f}"
        )
    emit("reconfig_strategies", "\n".join(lines))

    for burst, big_best, small_plans in rows:
        # Plenty of fabric -> zero-switch static deployment wins.
        assert big_best.strategy is Strategy.STATIC_ALL
        # Constrained device: static infeasible, others feasible.
        assert not small_plans[Strategy.STATIC_ALL].feasible
        assert small_plans[Strategy.RECONFIG_SINGLE].feasible
        # Hybrid never reconfigures more than blind single-region.
        assert (
            small_plans[Strategy.HYBRID_PINNED].reconfig_seconds
            <= small_plans[Strategy.RECONFIG_SINGLE].reconfig_seconds + 1e-12
        )
    # Burstier mixes pay less reconfiguration overhead.
    overheads = [
        plans[Strategy.RECONFIG_SINGLE].reconfig_seconds
        for _, _, plans in rows
    ]
    assert all(b <= a + 1e-12 for a, b in zip(overheads, overheads[1:]))
