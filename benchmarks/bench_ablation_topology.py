"""Ablation — mesh vs torus NoC topology.

The paper uses a plain 2-D mesh. The torus extension adds wraparound
links, removing the boundary penalty: routers at the mesh edge have
fewer neighbours, which hurts dense traffic patterns. On all-to-all
kernel communication the torus placement achieves strictly lower
weighted hop cost once the system outgrows a 2×2-ish NoC; at 4 kernels
the topologies are within heuristic noise of each other — matching the
intuition that the paper's small NoCs gain nothing from wraparound.
"""

from __future__ import annotations

from repro.core import CommGraph, DesignConfig, KernelSpec, design_interconnect
from repro.hw.resources import ResourceCost

THETA = 1.3e-9
SIZES = (4, 6, 8)
EDGE_BYTES = 10_000


def all_to_all(n: int) -> CommGraph:
    """Every kernel streams to every other (dense traffic)."""
    ks = {
        f"k{i}": KernelSpec(f"k{i}", 20_000.0, 200_000.0,
                            resources=ResourceCost(500, 500))
        for i in range(n)
    }
    edges = {
        (f"k{i}", f"k{j}"): EDGE_BYTES
        for i in range(n) for j in range(n) if i != j
    }
    return CommGraph(kernels=ks, kk_edges=edges, host_in={"k0": 1_000})


def evaluate():
    rows = []
    for n in SIZES:
        graph = all_to_all(n)
        costs = {}
        for topo in ("mesh", "torus"):
            # Sharing off: this study isolates the NoC's shape.
            config = DesignConfig(
                theta_s_per_byte=THETA, stream_overhead_s=0.0,
                noc_topology=topo, enable_sharing=False,
            )
            plan = design_interconnect(f"a2a{n}", graph, config)
            weights = {
                (p, f"mem:{c}"): float(b) for p, c, b in plan.noc.edges
            }
            cost = plan.noc.placement.weighted_cost(weights)
            costs[topo] = (cost, cost / (len(weights) * EDGE_BYTES))
        rows.append((n, costs))
    return rows


def test_ablation_topology(benchmark, emit):
    rows = benchmark(evaluate)
    lines = [
        f"{'kernels':>8}{'mesh cost':>12}{'torus cost':>12}"
        f"{'mesh hops':>11}{'torus hops':>12}"
    ]
    for n, costs in rows:
        lines.append(
            f"{n:>8}{costs['mesh'][0]:>12.0f}{costs['torus'][0]:>12.0f}"
            f"{costs['mesh'][1]:>11.2f}{costs['torus'][1]:>12.2f}"
        )
    emit("ablation_topology", "\n".join(lines))

    by_n = dict(rows)
    # Small NoCs: within heuristic noise (the paper's regime).
    mesh4, torus4 = by_n[4]["mesh"][0], by_n[4]["torus"][0]
    assert abs(mesh4 - torus4) <= 0.25 * mesh4
    # Dense larger NoCs: wraparound strictly wins.
    for n in (6, 8):
        assert by_n[n]["torus"][0] < by_n[n]["mesh"][0], n
    # Average hop distance grows with size on the open mesh.
    assert by_n[8]["mesh"][1] > by_n[4]["mesh"][1]
