#!/usr/bin/env python
"""CI smoke driver for the networked design service.

Drives an already-running ``repro serve`` instance (``--url``) through
every externally-observable behaviour the server promises:

1. ``/healthz`` and ``/readyz`` respond 200;
2. ``POST /v1/design`` for all four applications returns summaries that
   are **byte-identical** (under ``canonical_json``) to an in-process
   ``run_experiment`` — the server is a transport, not a re-derivation;
3. ``GET /v1/jobs/<fingerprint>`` returns the cached summary for a
   known fingerprint and 404 for an unknown one;
4. ``POST /v1/sweep`` returns one record per grid point;
5. ``POST /v1/sweep/stream`` delivers one SSE ``point`` event per grid
   point followed by a ``done`` event whose count matches;
6. ``GET /metrics`` exposes the expected Prometheus families;
7. ``GET /v1/debug`` returns the runtime introspection document with
   every promised section, and ``render_top`` can draw it;
8. trace propagation: a dedicated traced in-process server proves that
   one request produces ``client_request`` → ``http_request`` → ``job``
   spans all carrying the same W3C trace id, which is also echoed in
   the response envelope; ``--trace-out`` writes the merged spans as a
   chrome://tracing-loadable artifact;
9. the quota path: a *separate* in-process server with a near-zero
   per-tenant rate answers the second request with 429 and a
   ``Retry-After`` hint, and the rejection is visible (with the tenant
   label intact) in its ``/metrics``.

Exit code 0 means every check passed. Any assertion failure or
transport error is fatal — this script is a CI gate, not a report.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import List, Optional, Sequence

from repro.errors import ServerError
from repro.flow import result_summary, run_experiment
from repro.io import canonical_json
from repro.obs.runtime.debug import render_top
from repro.obs.trace import Tracer
from repro.server import DesignClient, ServerConfig, start_in_thread
from repro.service import DesignService

APPS = ("canny", "jpeg", "klt", "fluid")


def wait_ready(client: DesignClient, timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if client.readyz():
            return
        time.sleep(0.2)
    raise SystemExit(f"server at {client.base_url} never became ready")


def check_design_identity(client: DesignClient) -> List[str]:
    """Byte-identical served vs in-process summaries; fingerprints."""
    fingerprints = []
    for app in APPS:
        doc = client.design(app)
        assert doc["kind"] == "design-response", doc
        assert doc["app"] == app, doc
        assert doc["trace_id"] == client.last_trace_id, (
            f"{app}: envelope trace id {doc['trace_id']!r} != the id "
            f"the client sent ({client.last_trace_id!r})"
        )
        served = canonical_json(doc["summary"]).encode("utf-8")
        local = canonical_json(
            result_summary(run_experiment(app))
        ).encode("utf-8")
        assert served == local, (
            f"{app}: served summary differs from in-process pipeline"
        )
        fingerprints.append(doc["fingerprint"])
        print(f"  design {app}: byte-identical "
              f"({doc['fingerprint'][:12]}…, cached={doc['cached']})")
    return fingerprints


def check_jobs(client: DesignClient, fingerprint: str) -> None:
    doc = client.job(fingerprint)
    assert doc is not None and doc["kind"] == "job-response", doc
    assert doc["fingerprint"] == fingerprint and doc["summary"], doc
    assert client.job("0" * 64) is None
    print("  jobs: cached fingerprint found, unknown is 404")


def check_sweep(client: DesignClient) -> None:
    doc = client.sweep(list(APPS), scales=[1])
    assert doc["kind"] == "sweep-response", doc
    assert doc["count"] == len(APPS), doc
    assert len(doc["points"]) == len(APPS), doc
    print(f"  sweep: {doc['count']} points returned")


def check_stream(client: DesignClient) -> None:
    events = list(client.sweep_stream(list(APPS), scales=[1]))
    names = [name for name, _ in events]
    assert names == ["point"] * len(APPS) + ["done"], names
    done = events[-1][1]
    assert done["count"] == len(APPS), done
    print(f"  stream: {len(APPS)} point events then done")


def check_metrics(client: DesignClient) -> None:
    text = client.metrics()
    for family in ("repro_http_requests", "repro_cache_hits",
                   "repro_inflight_requests"):
        assert family in text, f"{family} missing from /metrics"
    print("  metrics: expected Prometheus families present")


def check_debug(client: DesignClient) -> None:
    doc = client.debug()
    assert doc["kind"] == "debug-response", doc
    assert doc["trace_id"] == client.last_trace_id, doc
    debug = doc["debug"]
    for section in ("uptime_s", "inflight_requests", "admission",
                    "batcher", "tenants", "cache", "service", "events"):
        assert section in debug, f"{section} missing from /v1/debug"
    counts = debug["events"]["counts"]
    assert counts.get("request_start", 0) > 0, counts
    # The dashboard must be able to draw whatever the endpoint serves.
    screen = render_top(doc, metrics_text=client.metrics())
    assert "repro top" in screen and "inflight" in screen, screen
    print(f"  debug: all sections present, "
          f"{sum(counts.values())} events logged, top renders")


def check_trace_propagation(trace_out: Optional[str]) -> None:
    """One request must yield a connected client→server→worker trace."""
    tracer = Tracer()  # shared by the server and its service
    service = DesignService(jobs=1, tracer=tracer)
    config = ServerConfig(port=0)
    try:
        with start_in_thread(config, service=service,
                             tracer=tracer) as handle:
            client_tracer = Tracer()
            client = DesignClient(handle.url, tenant="ci-trace",
                                  tracer=client_tracer)
            doc = client.design("canny")
            trace_id = client.last_trace_id
            assert doc["trace_id"] == trace_id, doc
    finally:
        service.close()
    spans = [e.as_dict() for e in client_tracer.events + tracer.events]
    by_name = {
        s["name"]: s for s in spans
        if s.get("args", {}).get("trace_id") == trace_id
    }
    for name in ("client_request", "http_request", "job"):
        assert name in by_name, (
            f"span {name!r} with trace id {trace_id} missing; "
            f"got {sorted(s['name'] for s in spans)}"
        )
    if trace_out is not None:
        merged = {
            "traceEvents": [
                e.to_chrome()
                for e in (*client_tracer.events, *tracer.events)
            ],
            "displayTimeUnit": "ms",
        }
        path = pathlib.Path(trace_out)
        path.write_text(json.dumps(merged) + "\n")
        print(f"  trace: wrote {len(merged['traceEvents'])} merged "
              f"spans to {path}")
    print(f"  trace: client_request/http_request/job spans share "
          f"trace id {trace_id[:16]}…")


def check_quota_429() -> None:
    """A dedicated stingy in-process server must 429 the second hit."""
    config = ServerConfig(port=0, quota_rate=0.001, quota_burst=1.0)
    with start_in_thread(config) as handle:
        client = DesignClient(handle.url, tenant="ci-stingy")
        client.design("canny")
        try:
            client.design("jpeg")
        except ServerError as exc:
            assert exc.status == 429, exc
            assert exc.retry_after > 0, exc
        else:
            raise AssertionError("second request was not rate limited")
        text = client.metrics()
        assert 'repro_quota_rejections{tenant="ci-stingy"}' in text, text
    verdict = handle.stop()
    assert verdict is True, "stingy server failed to drain"
    print("  quota: 429 + Retry-After observed, rejection in metrics, "
          "clean drain")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", required=True,
                        help="base URL of the running server")
    parser.add_argument("--tenant", default="ci-smoke")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write the merged client+server Chrome "
                             "trace of the propagation check here")
    args = parser.parse_args(argv)

    client = DesignClient(args.url, tenant=args.tenant)
    wait_ready(client)
    print(f"server smoke against {args.url}:")
    fingerprints = check_design_identity(client)
    check_jobs(client, fingerprints[0])
    check_sweep(client)
    check_stream(client)
    check_metrics(client)
    check_debug(client)
    check_trace_propagation(args.trace_out)
    check_quota_429()
    print("server smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
