#!/usr/bin/env python3
"""Repo-specific AST lint rules, run in CI ahead of the test suite.

Six rules, each encoding an invariant the test suite can only probe
statistically but the AST can prove outright:

* **R1 wall-clock** — no ``time.time()`` / ``time.time_ns()`` /
  ``datetime.now()`` / ``datetime.utcnow()`` inside ``repro.sim`` or
  ``repro.core``. The designer and simulator must be deterministic
  functions of their inputs; wall-clock reads would break replayable
  fuzz seeds and the byte-identical golden files.
* **R2 shared RNG** — no module-level ``random.<fn>()`` calls (or
  ``from random import ...``) inside ``repro.sim`` or ``repro.core``.
  Randomness must flow through an explicitly seeded
  ``random.Random(seed)`` instance so every draw is reproducible.
* **R3 float equality** — no ``==`` / ``!=`` against a float literal
  anywhere in ``src/repro``. Analytic-vs-simulated comparisons go
  through the tolerance helpers; literal float equality is a latent
  flake. (Tests live outside ``src`` and may pin exact values.)
* **R4 schema drift** — every dict literal carrying a ``"kind"`` key is
  a serialized-document schema. Their key sets are digested into
  ``tools/schema_digest.json``; an unacknowledged change fails CI until
  the author reruns with ``--update`` (and, where needed, bumps
  ``FORMAT_VERSION`` / the format docs).
* **R5 raw print** — no bare ``print()`` inside ``repro.server`` or
  ``repro.obs``. Library layers report through the structured event
  log, metrics, and return values; stdout belongs to the CLI layer
  (``repro.cli`` builds the human-facing output), and a stray print
  would corrupt piped CSV/JSON and the SSE wire format.
* **R6 static purity** — no import of ``repro.sim`` or
  ``repro.profiling`` (absolute, ``from``-style, or relative) anywhere
  inside ``repro.static``. The static analyzer's claim is that it
  derives the communication graph *without executing anything*; an
  import of the simulator or the tracer would silently void that claim
  even if no kernel actually runs.

Usage::

    python tools/lint_repro.py            # check, exit 1 on findings
    python tools/lint_repro.py --update   # rewrite the schema digest
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import pathlib
import sys
from typing import Any, Dict, Iterator, List, NamedTuple, Sequence

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"
DIGEST_PATH = REPO_ROOT / "tools" / "schema_digest.json"

#: Subpackages under the determinism contract (R1 + R2).
DETERMINISTIC_SCOPES = ("sim", "core")

#: Subpackages that must not write to stdout (R5) — they report through
#: the event log / metrics / return values; printing is the CLI's job.
SILENT_SCOPES = ("server", "obs")

#: Subpackages under the execution-free contract (R6) — the static
#: analyzer derives the graph without running anything, so it may import
#: neither the simulator nor the tracer.
PURE_SCOPES = ("static",)

#: Dotted package prefixes the pure scopes must not import (R6).
IMPURE_IMPORTS = ("repro.sim", "repro.profiling")

#: Dotted-call suffixes that read the wall clock.
WALL_CLOCK_CALLS = frozenset(
    {"time.time", "time.time_ns", "datetime.now", "datetime.utcnow"}
)


class Finding(NamedTuple):
    """One lint hit, formatted ``path:line: rule message``."""

    rule: str
    path: pathlib.Path
    line: int
    message: str

    def __str__(self) -> str:
        rel = self.path.relative_to(REPO_ROOT)
        return f"{rel}:{self.line}: {self.rule} {self.message}"


def _python_files(root: pathlib.Path) -> List[pathlib.Path]:
    return sorted(root.rglob("*.py"))


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of a call target (``a.b.c`` or ``""``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _in_deterministic_scope(path: pathlib.Path) -> bool:
    rel = path.relative_to(SRC_ROOT)
    return bool(rel.parts) and rel.parts[0] in DETERMINISTIC_SCOPES


def _in_silent_scope(path: pathlib.Path) -> bool:
    rel = path.relative_to(SRC_ROOT)
    return bool(rel.parts) and rel.parts[0] in SILENT_SCOPES


def _in_pure_scope(path: pathlib.Path) -> bool:
    rel = path.relative_to(SRC_ROOT)
    return bool(rel.parts) and rel.parts[0] in PURE_SCOPES


# -- R1 / R2: determinism of sim + core ----------------------------------
def check_wall_clock(path: pathlib.Path, tree: ast.AST) -> Iterator[Finding]:
    """R1: wall-clock reads inside the deterministic scopes."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if any(
            dotted == bad or dotted.endswith("." + bad)
            for bad in WALL_CLOCK_CALLS
        ):
            yield Finding(
                "R1", path, node.lineno,
                f"wall-clock call {dotted}() in deterministic scope — "
                "sim/core must be pure functions of their inputs",
            )


def check_shared_rng(path: pathlib.Path, tree: ast.AST) -> Iterator[Finding]:
    """R2: the process-global ``random`` RNG inside deterministic scopes."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            names = ", ".join(alias.name for alias in node.names)
            if names != "Random":
                yield Finding(
                    "R2", path, node.lineno,
                    f"from random import {names} — use a seeded "
                    "random.Random(seed) instance instead",
                )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr != "Random"
            ):
                yield Finding(
                    "R2", path, node.lineno,
                    f"random.{func.attr}() uses the shared module RNG — "
                    "use a seeded random.Random(seed) instance instead",
                )


# -- R3: float-literal equality ------------------------------------------
def check_float_equality(
    path: pathlib.Path, tree: ast.AST
) -> Iterator[Finding]:
    """R3: ``==`` / ``!=`` against a float literal anywhere in src."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                if isinstance(side, ast.Constant) and isinstance(
                    side.value, float
                ):
                    yield Finding(
                        "R3", path, node.lineno,
                        f"float literal {side.value!r} compared with "
                        "==/!= — use an explicit tolerance",
                    )
                    break


# -- R5: raw print in library layers -------------------------------------
def check_raw_print(path: pathlib.Path, tree: ast.AST) -> Iterator[Finding]:
    """R5: bare ``print()`` calls inside the silent scopes."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield Finding(
                "R5", path, node.lineno,
                "raw print() in a library layer — emit a structured "
                "event / metric, or move the output to repro.cli",
            )


# -- R6: execution-free static analysis -----------------------------------
def _impure(dotted: str) -> bool:
    return any(
        dotted == bad or dotted.startswith(bad + ".")
        for bad in IMPURE_IMPORTS
    )


def _resolve_import_from(path: pathlib.Path, node: ast.ImportFrom) -> str:
    """Absolute dotted module a ``from ... import`` statement targets.

    Relative imports (``from ..sim import core``) are resolved against
    the file's package path under ``src/``, so a purity violation cannot
    hide behind dots.
    """
    if node.level == 0:
        return node.module or ""
    try:
        rel = path.relative_to(SRC_ROOT.parent)
    except ValueError:
        return node.module or ""
    # The package a module's level-1 imports resolve against is its
    # parent directory — for both plain modules and __init__.py.
    package = list(rel.parts[:-1])
    base = package[: len(package) - (node.level - 1)]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


def check_static_purity(
    path: pathlib.Path, tree: ast.AST
) -> Iterator[Finding]:
    """R6: simulator/tracer imports inside the pure static scope."""
    message = (
        "— repro.static must derive the graph without executing "
        "anything; it may not import the simulator or the tracer"
    )
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _impure(alias.name):
                    yield Finding(
                        "R6", path, node.lineno,
                        f"import {alias.name} {message}",
                    )
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_import_from(path, node)
            if _impure(base):
                yield Finding(
                    "R6", path, node.lineno,
                    f"from {base} import ... {message}",
                )
                continue
            for alias in node.names:
                dotted = f"{base}.{alias.name}" if base else alias.name
                if _impure(dotted):
                    yield Finding(
                        "R6", path, node.lineno,
                        f"from {base} import {alias.name} {message}",
                    )


# -- R4: serialized-schema digest ----------------------------------------
def _schema_keys(node: ast.Dict) -> List[str]:
    keys: List[str] = []
    for key in node.keys:
        if key is None:
            keys.append("<splat>")
        elif isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.append(key.value)
        else:
            keys.append("<dynamic>")
    return sorted(keys)


def collect_schemas(files: Sequence[pathlib.Path]) -> Dict[str, List[List[str]]]:
    """Key sets of every ``"kind"``-carrying dict literal, per module."""
    schemas: Dict[str, List[List[str]]] = {}
    for path in files:
        tree = ast.parse(path.read_text(), filename=str(path))
        found = [
            _schema_keys(node)
            for node in ast.walk(tree)
            if isinstance(node, ast.Dict) and "kind" in _schema_keys(node)
        ]
        if found:
            rel = str(path.relative_to(REPO_ROOT))
            schemas[rel] = sorted(found)
    return schemas


def schema_digest(schemas: Dict[str, List[List[str]]]) -> str:
    payload = json.dumps(schemas, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def check_schema_drift(
    schemas: Dict[str, List[List[str]]], digest_path: pathlib.Path
) -> Iterator[Finding]:
    """R4: compare current schemas against the committed digest."""
    if not digest_path.exists():
        yield Finding(
            "R4", digest_path, 1,
            "schema digest missing — run `python tools/lint_repro.py "
            "--update` and commit the result",
        )
        return
    recorded: Dict[str, Any] = json.loads(digest_path.read_text())
    if recorded.get("digest") == schema_digest(schemas):
        return
    old = recorded.get("schemas", {})
    for module in sorted(set(old) | set(schemas)):
        if old.get(module) != schemas.get(module):
            yield Finding(
                "R4", digest_path, 1,
                f"serialized-document schema changed in {module} — review "
                "FORMAT_VERSION and the format docs, then run `python "
                "tools/lint_repro.py --update`",
            )


def write_digest(
    schemas: Dict[str, List[List[str]]], digest_path: pathlib.Path
) -> None:
    digest_path.write_text(
        json.dumps(
            {
                "comment": (
                    "key sets of every dict literal carrying a 'kind' "
                    "key in src/repro; regenerate with "
                    "`python tools/lint_repro.py --update`"
                ),
                "digest": schema_digest(schemas),
                "schemas": schemas,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


# -- driver ---------------------------------------------------------------
def run_lint(
    src_root: pathlib.Path = SRC_ROOT,
    digest_path: pathlib.Path = DIGEST_PATH,
) -> List[Finding]:
    """All findings over the tree; empty list means clean."""
    findings: List[Finding] = []
    files = _python_files(src_root)
    for path in files:
        tree = ast.parse(path.read_text(), filename=str(path))
        if _in_deterministic_scope(path):
            findings.extend(check_wall_clock(path, tree))
            findings.extend(check_shared_rng(path, tree))
        if _in_silent_scope(path):
            findings.extend(check_raw_print(path, tree))
        if _in_pure_scope(path):
            findings.extend(check_static_purity(path, tree))
        findings.extend(check_float_equality(path, tree))
    findings.extend(check_schema_drift(collect_schemas(files), digest_path))
    return sorted(findings, key=lambda f: (f.rule, str(f.path), f.line))


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite tools/schema_digest.json from the current tree",
    )
    args = parser.parse_args(argv)
    if args.update:
        schemas = collect_schemas(_python_files(SRC_ROOT))
        write_digest(schemas, DIGEST_PATH)
        print(f"wrote {DIGEST_PATH.relative_to(REPO_ROOT)} "
              f"({len(schemas)} module(s))")
        return 0
    findings = run_lint()
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print("lint_repro: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
